//! Query-driven local estimation of κ indices (the paper's §1/§6
//! query-driven scenario).
//!
//! The peeling algorithm cannot answer "what is the core number of this
//! vertex?" without decomposing the entire graph. The local formulation
//! can: `τ_t(q)` depends only on the t-hop neighborhood of `q` in the
//! r-clique adjacency (neighbors = r-cliques sharing an s-clique), so a
//! query is answered by pulling exactly that neighborhood and running `t`
//! synchronous updates on it. The estimate equals the global Snd value
//! `τ_t(q)` bit-for-bit — Theorem 1 then gives the guarantee
//! `κ(q) ≤ estimate ≤ d_s(q)`, with the upper bound shrinking per
//! iteration.

use hdsd_hindex::HBuffer;
use std::collections::HashMap;

use crate::space::CliqueSpace;

/// Options for a budgeted local estimation.
#[derive(Clone, Copy, Debug)]
pub struct QueryOptions {
    /// Iterations of the local update (`t`). More iterations tighten the
    /// upper bound toward κ (Theorem 1).
    pub iterations: usize,
    /// Maximum r-cliques to pull into the explored ball; `None` explores
    /// the full `t`-hop neighborhood. A truncated ball keeps the estimate
    /// a valid upper bound (outside reads fall back to `d_s ≥ κ`) but
    /// breaks bit-equality with the global Snd trajectory.
    pub budget: Option<usize>,
    /// Also compute a κ *lower* bound: the fixpoint of the local update on
    /// the sub-hypergraph induced by the explored ball (containers whose
    /// members all lie inside). That restricted universe satisfies its own
    /// support thresholds, so its peel value at `q` certifies
    /// `κ(q) ≥ lower` — together with the estimate this brackets
    /// `lower ≤ κ(q) ≤ estimate`.
    pub lower_bound: bool,
    /// Wall-clock deadline. Enforced at the same checkpoints as `budget`:
    /// exploration stops (marking the result `truncated`) once the
    /// deadline passes, and the lower-bound certificate is skipped (left
    /// at 0, which is always valid). The estimate stays a correct upper
    /// bound exactly as under a budget cut — unexplored reads fall back
    /// to `d_s ≥ κ`.
    pub deadline: Option<std::time::Instant>,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions { iterations: 3, budget: None, lower_bound: false, deadline: None }
    }
}

/// Result of one local estimation.
#[derive(Clone, Debug)]
pub struct QueryEstimate {
    /// Estimated κ: a certified upper bound (equals the global `τ_t` at
    /// the query when the ball was not truncated).
    pub estimate: u32,
    /// Certified lower bound on κ (0 unless [`QueryOptions::lower_bound`]).
    pub lower: u32,
    /// `d_s(q)`: the iteration-0 upper bound, for reference.
    pub degree: u32,
    /// r-cliques touched (size of the explored neighborhood).
    pub explored: usize,
    /// Iterations performed (`t`).
    pub iterations: usize,
    /// Whether the exploration budget cut the ball short.
    pub truncated: bool,
}

/// Estimates κ of r-clique `q` with `t` iterations of the local update,
/// touching only the `t`-hop neighborhood of `q`. The estimate equals the
/// global Snd `τ_t(q)` bit-for-bit.
pub fn local_estimate<S: CliqueSpace>(space: &S, q: usize, t: usize) -> QueryEstimate {
    local_estimate_opts(space, q, &QueryOptions { iterations: t, ..QueryOptions::default() })
}

/// [`local_estimate`] with an exploration budget and optional lower-bound
/// certificate — the serving engine's query primitive.
pub fn local_estimate_opts<S: CliqueSpace>(
    space: &S,
    q: usize,
    opts: &QueryOptions,
) -> QueryEstimate {
    assert!(q < space.num_cliques(), "query clique out of range");
    let t = opts.iterations;
    let cap = opts.budget.unwrap_or(usize::MAX).max(1);
    // `Instant::now` is only consulted when a deadline was set, so the
    // unconstrained path pays nothing.
    let past_deadline = || opts.deadline.is_some_and(|d| std::time::Instant::now() >= d);
    // BFS distances up to t in the r-clique adjacency, stopping at the
    // exploration budget or the deadline.
    let mut dist: HashMap<usize, u32> = HashMap::new();
    dist.insert(q, 0);
    let mut frontier = vec![q];
    let mut truncated = false;
    'bfs: for d in 1..=t as u32 {
        let mut next = Vec::new();
        for &i in &frontier {
            if dist.len() >= cap || past_deadline() {
                truncated = true;
                break 'bfs;
            }
            let r = space.try_for_each_container(i, |others| {
                for &o in others {
                    if !dist.contains_key(&o) {
                        if dist.len() >= cap {
                            return std::ops::ControlFlow::Break(());
                        }
                        dist.insert(o, d);
                        next.push(o);
                    }
                }
                std::ops::ControlFlow::Continue(())
            });
            if r.is_break() {
                truncated = true;
                break 'bfs;
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }

    // τ values for the explored ball; everything outside keeps τ0 = d_s,
    // which is only ever *read* (never recomputed), preserving equality
    // with the global Snd trajectory.
    let mut tau: HashMap<usize, u32> = HashMap::with_capacity(dist.len());
    for &i in dist.keys() {
        tau.insert(i, space.degree(i));
    }

    let mut buf = HBuffer::new();
    let mut curr: Vec<(usize, u32)> = Vec::new();
    for j in 1..=t as u32 {
        // Recompute τ_j for r-cliques within distance t - j: their next
        // value needs neighbors' τ_{j-1}, available within distance
        // t - j + 1.
        let radius = (t as u32) - j;
        curr.clear();
        for (&i, &d) in &dist {
            if d <= radius {
                let old = tau[&i];
                // Reads may touch cliques outside the explored ball only
                // when d == radius boundary neighbors were explored at
                // d + 1 <= t; cliques never explored read their d_s.
                let read =
                    |o: usize| -> u32 { tau.get(&o).copied().unwrap_or_else(|| space.degree(o)) };
                let new = update_one_map(space, i, old, &read, &mut buf);
                curr.push((i, new));
            }
        }
        for &(i, v) in &curr {
            tau.insert(i, v);
        }
    }

    // The certificate is strictly optional work; past the deadline it is
    // skipped (0 is always a valid lower bound) and the cut is reported.
    // A deadline tripping *inside* the descent also yields 0: intermediate
    // descent values are not yet certificates, only the fixpoint is.
    let lower = if opts.lower_bound && !past_deadline() {
        match ball_lower_bound(space, q, &dist, opts.deadline) {
            Some(l) => l,
            None => {
                truncated = true;
                0
            }
        }
    } else {
        if opts.lower_bound {
            truncated = true;
        }
        0
    };
    QueryEstimate {
        estimate: tau[&q],
        lower,
        degree: space.degree(q),
        explored: dist.len(),
        iterations: t,
        truncated,
    }
}

/// The peel value of `q` in the sub-hypergraph induced by the explored
/// ball: only containers whose members all lie inside the ball count.
/// Because that restricted clique set satisfies its own support
/// thresholds, `κ(q)` in the full graph is at least this value — a local,
/// certificate-style lower bound in the spirit of Andersen's local dense
/// subgraph algorithms.
///
/// Returns `None` when the deadline trips mid-descent: the intermediate
/// values are not valid lower bounds (the certificate argument only holds
/// at the fixpoint), so the caller must fall back to 0 and report the cut.
fn ball_lower_bound<S: CliqueSpace>(
    space: &S,
    q: usize,
    dist: &HashMap<usize, u32>,
    deadline: Option<std::time::Instant>,
) -> Option<u32> {
    // Materialize the induced sub-hypergraph once — dense ids, flat CSR
    // of the inside-ball containers — so the fixpoint descent below is a
    // contiguous array scan instead of re-running container walks and
    // hash lookups every iteration (this is the serving engine's
    // per-request path).
    let members: Vec<usize> = dist.keys().copied().collect();
    let index: HashMap<usize, u32> =
        members.iter().enumerate().map(|(d, &i)| (i, d as u32)).collect();
    let past_deadline = || deadline.is_some_and(|d| std::time::Instant::now() >= d);
    let mut offsets = vec![0usize; members.len() + 1];
    let mut flat: Vec<u32> = Vec::new();
    let mut group = 0usize;
    for (d, &i) in members.iter().enumerate() {
        if d % 1024 == 0 && past_deadline() {
            return None;
        }
        space.for_each_container(i, |others| {
            if others.iter().all(|o| index.contains_key(o)) {
                group = others.len();
                for &o in others {
                    flat.push(index[&o]);
                }
            }
        });
        offsets[d + 1] = flat.len();
    }
    if group == 0 {
        return Some(0); // no container lies fully inside the ball
    }

    // In-place descent to the fixpoint (values only decrease; the h-index
    // over the restricted container set converges to that sub-hypergraph's
    // peel value).
    let mut tau: Vec<u32> =
        (0..members.len()).map(|d| ((offsets[d + 1] - offsets[d]) / group) as u32).collect();
    let mut buf = HBuffer::new();
    loop {
        // One check per descent iteration: each pass is a bounded array
        // scan, so the overshoot past the deadline is at most one pass.
        if past_deadline() {
            return None;
        }
        let mut changed = false;
        for d in 0..members.len() {
            let old = tau[d];
            if old == 0 {
                continue;
            }
            let mut session = buf.session((offsets[d + 1] - offsets[d]) / group);
            for chunk in flat[offsets[d]..offsets[d + 1]].chunks_exact(group) {
                let mut m = u32::MAX;
                for &o in chunk {
                    m = m.min(tau[o as usize]);
                }
                session.push(m);
            }
            let new = session.finish().min(old);
            if new != old {
                tau[d] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Some(tau[index[&q] as usize])
}

/// `update_one` against a map-backed τ lookup.
fn update_one_map<S: CliqueSpace>(
    space: &S,
    i: usize,
    old: u32,
    read: &impl Fn(usize) -> u32,
    buf: &mut HBuffer,
) -> u32 {
    if old == 0 {
        return 0;
    }
    let deg = space.degree(i) as usize;
    let mut session = buf.session(deg);
    space.for_each_container(i, |others| {
        let mut m = u32::MAX;
        for &o in others {
            m = m.min(read(o));
        }
        session.push(m);
    });
    session.finish()
}

/// Estimates core numbers (κ₂) for a set of query vertices.
pub fn estimate_core_numbers(
    graph: &hdsd_graph::CsrGraph,
    queries: &[hdsd_graph::VertexId],
    iterations: usize,
) -> Vec<QueryEstimate> {
    let space = crate::space::CoreSpace::new(graph);
    queries.iter().map(|&v| local_estimate(&space, v as usize, iterations)).collect()
}

/// Estimates truss numbers (κ₃) for a set of query edges.
pub fn estimate_truss_numbers(
    graph: &hdsd_graph::CsrGraph,
    query_edges: &[hdsd_graph::EdgeId],
    iterations: usize,
) -> Vec<QueryEstimate> {
    let space = crate::space::TrussSpace::on_the_fly(graph);
    query_edges.iter().map(|&e| local_estimate(&space, e as usize, iterations)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::LocalConfig;
    use crate::peel::peel;
    use crate::snd::snd_with_observer;
    use crate::space::{CoreSpace, TrussSpace};

    #[test]
    fn estimate_matches_global_snd_trajectory() {
        let g = hdsd_datasets::holme_kim(200, 4, 0.5, 7);
        let sp = CoreSpace::new(&g);
        // Record the exact global τ_t values.
        let mut snapshots: Vec<Vec<u32>> = Vec::new();
        snd_with_observer(&sp, &LocalConfig::sequential(), &mut |ev| {
            snapshots.push(ev.tau.to_vec());
        });
        for &q in &[0usize, 17, 55, 123, 199] {
            for t in 1..=3usize {
                let est = local_estimate(&sp, q, t);
                assert_eq!(
                    est.estimate,
                    snapshots[t - 1][q],
                    "query {q} at t={t} disagrees with global Snd"
                );
            }
        }
    }

    #[test]
    fn estimates_bound_kappa_from_above_and_shrink() {
        let g = hdsd_datasets::erdos_renyi_gnm(150, 600, 2);
        let sp = CoreSpace::new(&g);
        let exact = peel(&sp).kappa;
        for q in [3usize, 42, 99] {
            let mut prev = u32::MAX;
            for t in 0..5 {
                let est = local_estimate(&sp, q, t);
                assert!(est.estimate >= exact[q], "estimate below κ");
                assert!(est.estimate <= prev, "estimate not monotone");
                prev = est.estimate;
            }
        }
    }

    #[test]
    fn zero_iterations_returns_degree() {
        let g = hdsd_datasets::erdos_renyi_gnm(50, 120, 4);
        let sp = CoreSpace::new(&g);
        let est = local_estimate(&sp, 7, 0);
        assert_eq!(est.estimate, sp.degree(7));
        assert_eq!(est.explored, 1);
    }

    #[test]
    fn explored_ball_grows_with_iterations() {
        let g = hdsd_datasets::holme_kim(300, 3, 0.4, 11);
        let sp = CoreSpace::new(&g);
        let e1 = local_estimate(&sp, 5, 1);
        let e3 = local_estimate(&sp, 5, 3);
        assert!(e3.explored >= e1.explored);
        assert!(e1.explored <= g.num_vertices());
    }

    #[test]
    fn budget_truncates_but_keeps_upper_bound() {
        let g = hdsd_datasets::holme_kim(300, 5, 0.5, 8);
        let sp = CoreSpace::new(&g);
        let exact = peel(&sp).kappa;
        let full = local_estimate(&sp, 7, 4);
        assert!(!full.truncated);
        for budget in [1usize, 4, 16, 64] {
            let est = local_estimate_opts(
                &sp,
                7,
                &QueryOptions {
                    iterations: 4,
                    budget: Some(budget),
                    lower_bound: true,
                    deadline: None,
                },
            );
            assert!(est.explored <= budget.max(1) + 1, "budget {budget} overshot");
            assert!(est.estimate >= exact[7], "budget {budget} broke the upper bound");
            assert!(est.estimate <= est.degree);
            assert!(est.lower <= exact[7], "budget {budget} broke the lower bound");
            if budget < full.explored {
                assert!(est.truncated, "budget {budget} of {} not flagged", full.explored);
            }
        }
        // An unconstrained run reproduces local_estimate exactly.
        let opts = QueryOptions { iterations: 4, budget: None, lower_bound: false, deadline: None };
        assert_eq!(local_estimate_opts(&sp, 7, &opts).estimate, full.estimate);
    }

    #[test]
    fn lower_bound_brackets_kappa_on_all_spaces() {
        let g = hdsd_datasets::holme_kim(150, 5, 0.6, 21);
        let core = CoreSpace::new(&g);
        let truss = TrussSpace::precomputed(&g);
        let opts = QueryOptions { iterations: 3, budget: None, lower_bound: true, deadline: None };
        for q in [0usize, 11, 60, 120] {
            let exact = peel(&core).kappa;
            let est = local_estimate_opts(&core, q, &opts);
            assert!(est.lower <= exact[q] && exact[q] <= est.estimate, "core {q}");
        }
        let exact_t = peel(&truss).kappa;
        for q in [0usize, 25, 80] {
            let est = local_estimate_opts(&truss, q, &opts);
            assert!(est.lower <= exact_t[q] && exact_t[q] <= est.estimate, "truss {q}");
        }
    }

    #[test]
    fn lower_bound_is_exact_on_a_clique() {
        // Inside K5 every vertex has κ = 4; a 1-hop ball already contains
        // the whole clique, so the certificate is tight.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                edges.push((u, v));
            }
        }
        edges.push((4, 5)); // pendant
        let g = hdsd_graph::graph_from_edges(edges);
        let sp = CoreSpace::new(&g);
        let est = local_estimate_opts(
            &sp,
            0,
            &QueryOptions { iterations: 2, budget: None, lower_bound: true, deadline: None },
        );
        assert_eq!(est.lower, 4);
        assert_eq!(est.estimate, 4);
    }

    #[test]
    fn truss_query_helper() {
        let g = hdsd_datasets::holme_kim(120, 5, 0.6, 5);
        let tsp = TrussSpace::on_the_fly(&g);
        let exact = peel(&tsp).kappa;
        let queries: Vec<u32> = vec![0, 10, 20];
        let ests = estimate_truss_numbers(&g, &queries, 4);
        for (q, est) in queries.iter().zip(&ests) {
            assert!(est.estimate >= exact[*q as usize]);
        }
    }

    #[test]
    fn core_query_helper_converges_to_exact_on_small_graph() {
        let g = hdsd_datasets::erdos_renyi_gnm(40, 90, 9);
        let sp = CoreSpace::new(&g);
        let exact = peel(&sp).kappa;
        // Enough iterations: estimates equal exact κ.
        let queries: Vec<u32> = (0..40).collect();
        let ests = estimate_core_numbers(&g, &queries, 40);
        for (q, est) in queries.iter().zip(&ests) {
            assert_eq!(est.estimate, exact[*q as usize], "vertex {q}");
        }
    }
}
