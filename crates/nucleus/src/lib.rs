#![warn(missing_docs)]
//! # hdsd-nucleus
//!
//! Local algorithms for hierarchical dense subgraph discovery — a faithful
//! implementation of Sarıyüce, Seshadhri & Pinar (PVLDB 12(1), 2018).
//!
//! A **k-(r,s) nucleus** is a maximal union of s-cliques in which every
//! r-clique participates in at least `k` s-cliques (and the r-cliques are
//! S-connected). Setting (r,s) = (1,2) gives k-cores, (2,3) gives k-trusses,
//! and (3,4) gives the nucleus decomposition the paper showcases. The
//! **κ index** of an r-clique is the largest `k` for which it belongs to a
//! k-(r,s) nucleus.
//!
//! Three ways to compute κ:
//!
//! * [`peel()`] — exact global peeling (Algorithm 1), the baseline;
//! * [`snd()`] — synchronous iterated h-indices (Algorithm 2), local and
//!   embarrassingly parallel;
//! * [`and()`] — asynchronous iterated h-indices (Algorithm 3), converges
//!   faster, supports the notification mechanism and custom orders.
//!
//! Plus the surrounding machinery the paper's evaluation exercises:
//! degree levels and the Theorem-3 convergence bound ([`levels`]), the
//! nucleus hierarchy/forest ([`hierarchy`]), query-driven local estimation
//! ([`query`]), and the toy graphs from the paper's figures ([`toys`]).
//!
//! ## Quick start
//!
//! ```
//! use hdsd_nucleus::prelude::*;
//! use hdsd_graph::graph_from_edges;
//!
//! // Two K4s sharing an edge, plus a tail.
//! let g = graph_from_edges([
//!     (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
//!     (2, 4), (2, 5), (3, 4), (3, 5), (4, 5), (5, 6),
//! ]);
//! let core = CoreSpace::new(&g);
//! let exact = peel(&core);                       // ground truth
//! let local = snd(&core, &LocalConfig::default()); // local algorithm
//! assert_eq!(local.tau, exact.kappa);
//! ```

pub mod api;
pub mod asynchronous;
pub mod cancel;
pub mod convergence;
pub mod delta;
pub mod export;
pub mod hierarchy;
pub mod incremental;
pub mod levels;
pub mod peel;
pub mod query;
pub mod snd;
pub mod space;
pub mod toys;

pub use api::{
    approx_core_numbers, approx_truss_numbers, core_numbers, densest_nucleus, maximum_core_of,
    maximum_truss_of, nucleus34_numbers, truss_numbers,
};
pub use asynchronous::{
    and, and_resume, and_resume_awake, and_resume_awake_within, and_with_options,
    and_without_notification, Order,
};
pub use cancel::{CancelReason, CancelToken, Cancelled};
pub use convergence::{
    ConvergenceResult, IterationEvent, LocalConfig, SweepMode, DEFAULT_CONTAINER_CACHE_BUDGET,
};
pub use delta::{core_space_delta, nucleus34_space_delta, truss_space_delta, SpaceDelta};
pub use export::{
    read_snapshot, write_hierarchy_dot, write_kappa_tsv, write_snapshot, Snapshot, SpaceSnapshot,
    SNAPSHOT_MAGIC, SNAPSHOT_MIN_VERSION, SNAPSHOT_VERSION,
};
pub use hierarchy::{
    assert_forest_eq, build_hierarchy, build_hierarchy_within, repair_hierarchy, Hierarchy,
    HierarchyNode, RepairStats,
};
pub use incremental::{
    clique_key, rebuild_graph, refresh_resume, refresh_resume_of, refresh_resume_of_within,
    stale_kappa_map, warm_tau_init, warm_tau_init_local, warm_tau_init_of, BatchOutcome, CliqueKey,
    CoreKind, Incremental, IncrementalCore, KeyHasher, Nucleus34Kind, RefreshOutcome, SpaceKind,
    StaleMap, TrussKind, WarmStart,
};
pub use levels::{degree_levels, DegreeLevels};
pub use peel::{
    peel, peel_flat, peel_parallel, peel_parallel_flat, peel_parallel_flat_with,
    peel_parallel_flat_within, peel_parallel_with, peel_walk, peel_within, DrainStats,
    PeelCancelled, PeelEngine, PeelResult, PeelStats, PEEL_CANCEL_CHUNK,
};
pub use query::{
    estimate_core_numbers, estimate_truss_numbers, local_estimate, local_estimate_opts,
    QueryEstimate, QueryOptions,
};
pub use snd::{snd, snd_with_observer};
pub use space::{
    CachedSpace, CliqueSpace, CoreSpace, FlatContainers, GenericSpace, Nucleus34Space, TrussSpace,
    Vertex13Space,
};

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::api::{core_numbers, densest_nucleus, truss_numbers};
    pub use crate::asynchronous::{and, Order};
    pub use crate::convergence::{ConvergenceResult, LocalConfig, SweepMode};
    pub use crate::hierarchy::build_hierarchy;
    pub use crate::levels::degree_levels;
    pub use crate::peel::peel;
    pub use crate::snd::snd;
    pub use crate::space::{
        CliqueSpace, CoreSpace, GenericSpace, Nucleus34Space, TrussSpace, Vertex13Space,
    };
}
