//! Degree levels (the paper's Definition 7) and the Theorem-3 bound.
//!
//! Level `L_0` is the set of r-cliques of minimum S-degree; `L_i` is the
//! minimum-S-degree set after all earlier levels (and every s-clique
//! touching them) are removed. Theorem 3 proves that every r-clique in
//! `L_i` has converged by iteration `i` of the synchronous update, so the
//! number of levels is an upper bound on Snd's iteration count — much
//! tighter than the trivial `|R(G)|` bound, and measurable per graph.

use crate::space::CliqueSpace;

/// Degree-level decomposition of a clique space.
#[derive(Clone, Debug)]
pub struct DegreeLevels {
    /// `level[i]` = degree level of r-clique `i` (0-based).
    pub level: Vec<u32>,
    /// Number of levels (`max level + 1`, 0 for an empty space).
    pub num_levels: usize,
}

impl DegreeLevels {
    /// Sizes of each level.
    pub fn level_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_levels];
        for &l in &self.level {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// The Theorem-3 upper bound on the number of Snd iterations needed to
    /// converge (the paper counts updating iterations; `L_i` converges
    /// within `i` iterations, so `num_levels` bounds the updating sweeps).
    pub fn snd_iteration_bound(&self) -> usize {
        self.num_levels
    }
}

/// Computes degree levels by batched peeling: each step removes *all*
/// current minimum-S-degree r-cliques at once.
pub fn degree_levels<S: CliqueSpace>(space: &S) -> DegreeLevels {
    let n = space.num_cliques();
    if n == 0 {
        return DegreeLevels { level: Vec::new(), num_levels: 0 };
    }
    let mut deg = space.initial_degrees();
    let mut removed = vec![false; n];
    let mut level = vec![0u32; n];
    let mut remaining = n;
    let mut current_level = 0u32;
    let mut batch: Vec<usize> = Vec::new();

    while remaining > 0 {
        let min_deg = (0..n).filter(|&i| !removed[i]).map(|i| deg[i]).min().expect("remaining > 0");
        batch.clear();
        batch.extend((0..n).filter(|&i| !removed[i] && deg[i] == min_deg));
        // Remove the whole batch; a container dies the first time one of
        // its members is removed, decrementing the still-alive others.
        for &i in &batch {
            removed[i] = true;
            level[i] = current_level;
        }
        remaining -= batch.len();
        for &i in &batch {
            space.for_each_container(i, |others| {
                // Container already dead if an *earlier-level* member or an
                // earlier-in-this-batch member killed it. We detect "killed
                // earlier in this batch" by comparing ids: the lowest-id
                // batch member in the container is the killer.
                let mut killer = i;
                for &o in others {
                    if removed[o] && level[o] < current_level {
                        return; // died in an earlier level
                    }
                    if removed[o] && level[o] == current_level && o < killer {
                        killer = o;
                    }
                }
                if killer != i {
                    return; // a lower-id batch member already handled it
                }
                for &o in others {
                    if !removed[o] && deg[o] > 0 {
                        deg[o] -= 1;
                    }
                }
            });
        }
        current_level += 1;
    }

    DegreeLevels { level, num_levels: current_level as usize }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::LocalConfig;
    use crate::peel::peel;
    use crate::snd::snd;
    use crate::space::{CoreSpace, TrussSpace};
    use hdsd_graph::graph_from_edges;

    /// The paper's Figure 4 example: levels of the k-core decomposition.
    /// L0 = {a}, L1 = {b}, L2 = {c, g}, L3 = {d, e, f}.
    fn paper_fig4_graph() -> hdsd_graph::CsrGraph {
        // Reconstruction matching the paper's trace: a (deg 1) is the unique
        // minimum; removing a leaves b (deg 2) minimal; removing b leaves
        // c and g (deg 3) tied; removing those leaves the d-e-f triangle
        // (deg 2 each). a=0, b=1, c=2, d=3, e=4, f=5, g=6.
        graph_from_edges([
            (0, 1), // a-b
            (1, 2),
            (1, 6), // b-c, b-g
            (2, 3),
            (2, 4),
            (2, 5), // c-{d,e,f}
            (6, 3),
            (6, 4),
            (6, 5), // g-{d,e,f}
            (3, 4),
            (3, 5),
            (4, 5), // d-e-f triangle
        ])
    }

    #[test]
    fn paper_fig4_levels() {
        let g = paper_fig4_graph();
        let sp = CoreSpace::new(&g);
        let lv = degree_levels(&sp);
        assert_eq!(lv.level[0], 0, "a in L0");
        assert_eq!(lv.level[1], 1, "b in L1");
        assert_eq!(lv.level[2], 2, "c in L2");
        assert_eq!(lv.level[6], 2, "g in L2");
        assert_eq!(lv.level[3], 3, "d in L3");
        assert_eq!(lv.level[4], 3, "e in L3");
        assert_eq!(lv.level[5], 3, "f in L3");
        assert_eq!(lv.num_levels, 4);
        assert_eq!(lv.level_sizes(), vec![1, 1, 2, 3]);
    }

    #[test]
    fn theorem2_kappa_nondecreasing_in_level() {
        for seed in [1u64, 5, 9] {
            let g = hdsd_datasets::holme_kim(200, 4, 0.5, seed);
            let sp = CoreSpace::new(&g);
            let lv = degree_levels(&sp);
            let kappa = peel(&sp).kappa;
            // max κ in level i <= min κ in level j for i < j fails in general;
            // Theorem 2 says: for Ri in Li, Rj in Lj with i <= j,
            // κ(Ri) <= κ(Rj). Check via per-level min/max.
            let mut min_per = vec![u32::MAX; lv.num_levels];
            let mut max_per = vec![0u32; lv.num_levels];
            for (i, &l) in lv.level.iter().enumerate() {
                min_per[l as usize] = min_per[l as usize].min(kappa[i]);
                max_per[l as usize] = max_per[l as usize].max(kappa[i]);
            }
            #[allow(clippy::needless_range_loop)]
            for i in 0..lv.num_levels {
                for j in i + 1..lv.num_levels {
                    assert!(
                        max_per[i] <= min_per[j],
                        "Theorem 2 violated between levels {i} and {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem3_bounds_snd_iterations() {
        for seed in [2u64, 7] {
            let g = hdsd_datasets::erdos_renyi_gnm(150, 500, seed);
            for as_truss in [false, true] {
                let (bound, iters) = if as_truss {
                    let sp = TrussSpace::precomputed(&g);
                    let lv = degree_levels(&sp);
                    let r = snd(&sp, &LocalConfig::sequential());
                    (lv.snd_iteration_bound(), r.iterations_to_converge())
                } else {
                    let sp = CoreSpace::new(&g);
                    let lv = degree_levels(&sp);
                    let r = snd(&sp, &LocalConfig::sequential());
                    (lv.snd_iteration_bound(), r.iterations_to_converge())
                };
                assert!(
                    iters <= bound,
                    "seed {seed} truss={as_truss}: Snd took {iters} > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn uniform_structures_have_one_level() {
        // In a cycle every vertex has degree 2: single level.
        let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]);
        let sp = CoreSpace::new(&g);
        let lv = degree_levels(&sp);
        assert_eq!(lv.num_levels, 1);
        assert!(lv.level.iter().all(|&l| l == 0));
    }

    #[test]
    fn empty_space_has_zero_levels() {
        let g = graph_from_edges([]);
        let sp = CoreSpace::new(&g);
        let lv = degree_levels(&sp);
        assert_eq!(lv.num_levels, 0);
        assert!(lv.level.is_empty());
    }

    #[test]
    fn path_levels_proceed_inward() {
        // Path 0-1-2-3-4: endpoints first (deg 1), then the next pair
        // becomes deg 1, etc.
        let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 4)]);
        let sp = CoreSpace::new(&g);
        let lv = degree_levels(&sp);
        assert_eq!(lv.level, vec![0, 1, 2, 1, 0]);
        assert_eq!(lv.num_levels, 3);
    }
}
