//! Incremental maintenance of core and truss numbers under edge updates.
//!
//! The paper's peeling baseline must restart from scratch when the graph
//! changes; the local formulation does not. Because the asynchronous
//! iteration converges to the exact κ from *any* pointwise upper bound
//! (see [`crate::asynchronous::and_resume`]), a stale decomposition is a
//! valid warm start once it is lifted back above the new κ:
//!
//! * **deletions** — κ never increases, so the stale τ is already an upper
//!   bound (clamped against the new degrees);
//! * **insertions** — a single edge insertion raises any core number by at
//!   most one and any truss number by at most one (the classic maintenance
//!   bounds of Li–Yu and Huang et al.), so `stale + #insertions`, clamped
//!   against the new degrees, is an upper bound.
//!
//! Warm starts sit within `#updates` of the fixpoint, so the resumed run
//! typically converges in a handful of sweeps instead of a full
//! decomposition — measured by the `sweeps` telemetry and asserted in the
//! tests.

use hdsd_graph::{CsrGraph, GraphBuilder, VertexId};

use crate::asynchronous::{and_resume, Order};
use crate::convergence::LocalConfig;
use crate::space::{CliqueSpace, CoreSpace};

/// Dynamically maintained core decomposition.
///
/// Owns the graph; [`IncrementalCore::insert_edges`] and
/// [`IncrementalCore::remove_edges`] apply a batch and refresh κ by a
/// warm-started local run.
pub struct IncrementalCore {
    graph: CsrGraph,
    kappa: Vec<u32>,
    cfg: LocalConfig,
}

impl IncrementalCore {
    /// Builds the initial decomposition (a full local run).
    pub fn new(graph: CsrGraph) -> Self {
        let cfg = LocalConfig::sequential();
        let space = CoreSpace::new(&graph);
        let kappa = crate::peel::peel(&space).kappa;
        IncrementalCore { graph, kappa, cfg }
    }

    /// Current graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Current exact core numbers.
    pub fn core_numbers(&self) -> &[u32] {
        &self.kappa
    }

    /// Inserts a batch of edges (duplicates and self-loops ignored) and
    /// refreshes κ. Returns the number of sweeps the refresh needed.
    pub fn insert_edges(&mut self, edges: &[(VertexId, VertexId)]) -> usize {
        let new_n = edges
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0)
            .max(self.graph.num_vertices());
        let mut b = GraphBuilder::with_capacity(self.graph.num_edges() + edges.len())
            .with_num_vertices(new_n);
        for &(u, v) in self.graph.edges() {
            b.add_edge(u, v);
        }
        let before = self.graph.num_edges();
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        let graph = b.build();
        let inserted = graph.num_edges().saturating_sub(before) as u32;
        // κ_new(v) ≤ κ_old(v) + #inserted edges, and always ≤ deg_new(v).
        let space = CoreSpace::new(&graph);
        let tau_init: Vec<u32> = (0..graph.num_vertices())
            .map(|v| {
                let stale = self.kappa.get(v).copied().unwrap_or(0);
                (stale + inserted).min(space.degree(v))
            })
            .collect();
        let r = and_resume(&space, &self.cfg, &Order::Natural, tau_init, &mut |_| {});
        debug_assert!(r.converged);
        self.graph = graph;
        self.kappa = r.tau;
        r.sweeps
    }

    /// Removes a batch of edges (absent edges ignored) and refreshes κ.
    /// Returns the number of sweeps the refresh needed.
    pub fn remove_edges(&mut self, edges: &[(VertexId, VertexId)]) -> usize {
        let drop: std::collections::HashSet<(u32, u32)> =
            edges.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
        let mut b = GraphBuilder::with_capacity(self.graph.num_edges())
            .with_num_vertices(self.graph.num_vertices());
        for &(u, v) in self.graph.edges() {
            if !drop.contains(&(u, v)) {
                b.add_edge(u, v);
            }
        }
        let graph = b.build();
        // κ never increases under deletion: stale κ (clamped to the new
        // degrees) remains an upper bound.
        let space = CoreSpace::new(&graph);
        let tau_init: Vec<u32> =
            (0..graph.num_vertices()).map(|v| self.kappa[v].min(space.degree(v))).collect();
        let r = and_resume(&space, &self.cfg, &Order::Natural, tau_init, &mut |_| {});
        debug_assert!(r.converged);
        self.graph = graph;
        self.kappa = r.tau;
        r.sweeps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::core_numbers;
    use crate::snd::snd;

    fn check_exact(inc: &IncrementalCore) {
        assert_eq!(inc.core_numbers(), core_numbers(inc.graph()).as_slice());
    }

    #[test]
    fn insertions_match_from_scratch() {
        let g = hdsd_datasets::erdos_renyi_gnm(100, 300, 7);
        let mut inc = IncrementalCore::new(g);
        check_exact(&inc);
        inc.insert_edges(&[(0, 50), (1, 51), (2, 52)]);
        check_exact(&inc);
        // growing the vertex set on the fly
        inc.insert_edges(&[(99, 120), (120, 121)]);
        assert_eq!(inc.graph().num_vertices(), 122);
        check_exact(&inc);
    }

    #[test]
    fn deletions_match_from_scratch() {
        let g = hdsd_datasets::holme_kim(120, 4, 0.5, 3);
        let mut inc = IncrementalCore::new(g);
        let some_edges: Vec<(u32, u32)> = inc.graph().edges().iter().copied().step_by(17).collect();
        inc.remove_edges(&some_edges);
        check_exact(&inc);
        // removing a non-existent edge is a no-op
        let before = inc.graph().num_edges();
        inc.remove_edges(&[(0, 0), (119, 118)]);
        assert!(inc.graph().num_edges() <= before);
        check_exact(&inc);
    }

    #[test]
    fn interleaved_updates_stay_exact() {
        let g = hdsd_datasets::erdos_renyi_gnm(60, 150, 11);
        let mut inc = IncrementalCore::new(g);
        for round in 0..5u32 {
            inc.insert_edges(&[(round, 59 - round), (round * 2, round * 2 + 30)]);
            check_exact(&inc);
            let e = inc.graph().edges()[round as usize * 3];
            inc.remove_edges(&[e]);
            check_exact(&inc);
        }
    }

    #[test]
    fn warm_start_uses_fewer_sweeps_than_cold_start() {
        let g = hdsd_datasets::thin_edges(&hdsd_datasets::holme_kim(800, 8, 0.5, 9), 0.7, 9);
        let cold = {
            let space = CoreSpace::new(&g);
            snd(&space, &LocalConfig::sequential()).sweeps
        };
        let mut inc = IncrementalCore::new(g);
        let sweeps = inc.insert_edges(&[(0, 400)]);
        assert!(sweeps < cold, "warm start took {sweeps} sweeps, cold start {cold}");
        check_exact(&inc);
    }

    #[test]
    fn empty_batches_are_noops() {
        let g = hdsd_datasets::erdos_renyi_gnm(30, 60, 1);
        let mut inc = IncrementalCore::new(g);
        let before = inc.core_numbers().to_vec();
        inc.insert_edges(&[]);
        inc.remove_edges(&[]);
        assert_eq!(inc.core_numbers(), before.as_slice());
    }
}
