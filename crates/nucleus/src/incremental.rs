//! Incremental maintenance of κ indices under edge updates — generic over
//! the clique space.
//!
//! The paper's peeling baseline must restart from scratch when the graph
//! changes; the local formulation does not. Because the asynchronous
//! iteration converges to the exact κ from *any* pointwise upper bound
//! (see [`crate::asynchronous::and_resume`]), a stale decomposition is a
//! valid warm start once it is lifted back above the new κ:
//!
//! * **deletions** — κ never increases (any witness sub-hypergraph of the
//!   smaller graph is one of the larger), so the stale τ is already an
//!   upper bound (clamped against the new degrees);
//! * **insertions** — a single edge insertion raises any κ by at most one
//!   in *every* supported space. For cores this is the classic Li–Yu /
//!   Sarıyüce et al. bound; for trusses it is Huang et al.'s: a new edge
//!   `e` participates in at most one triangle with any fixed surviving
//!   edge, so removing `e` from a witness subgraph costs each edge at most
//!   one triangle. The same counting works for the (3,4) nucleus: a K4
//!   containing a surviving triangle `T` and the new edge `e = (u, v)`
//!   must be `T ∪ {w}` with `w` an endpoint of `e` and the other endpoint
//!   in `T` — at most one such K4 per insertion. Hence
//!   `stale + #insertions`, clamped against the new degrees, is an upper
//!   bound for a batch.
//!
//! The wrinkle relative to the (1,2) case is that r-clique **ids are not
//! stable** across graph rebuilds: edge and triangle ids are positional.
//! Stale κ values are therefore carried across by clique *identity* — the
//! sorted vertex set ([`CliqueKey`]) — and r-cliques created by the batch
//! (which have no stale value) start from their new S-degree.
//!
//! Lifting *every* clique by the batch size is sound but wasteful: the
//! uniform inflation drains as slowly as a cold run. The refresh therefore
//! lifts only the **candidate set** — the generalization of the classic
//! incremental-k-core "subcore traversal" to arbitrary clique spaces:
//!
//! > If κ(i) increases, the witness sub-hypergraph for its new value is
//! > S-connected, contains a container created by the batch, and all its
//! > members j satisfy κ'(j) ≥ κ(i) + 1, hence stale κ(j) ≥ κ(i) + 1 − b.
//!
//! So only cliques reachable from a batch-touched container through
//! cliques of stale κ ≥ κ(i) + 1 − b can rise (see
//! [`warm_tau_init_local`]); everything else warm-starts *at* its
//! fixpoint and goes idle after one recomputation. The refresh then
//! converges in a handful of sweeps instead of a full decomposition —
//! measured by the `sweeps` telemetry, asserted in the tests, and
//! reported in `BENCH_service.json`.

use std::collections::HashMap;
use std::marker::PhantomData;

use hdsd_graph::{CsrDelta, CsrGraph, GraphBuilder, TriangleList, VertexId};

use crate::asynchronous::{and_resume_awake_within, Order};
use crate::cancel::{CancelToken, Cancelled};
use crate::convergence::{ConvergenceResult, LocalConfig};
use crate::delta::SpaceDelta;
use crate::space::{CachedSpace, CliqueSpace, CoreSpace, Nucleus34Space, TrussSpace};

/// Identity of an r-clique across graph rebuilds: its sorted vertex ids,
/// padded with `u32::MAX` (r ≤ 3 for all supported spaces).
pub type CliqueKey = [VertexId; 3];

/// Multiply-xor hasher for [`CliqueKey`]s: the stale maps hash every
/// clique of both graph versions on every refresh, so SipHash would
/// dominate the warm-start cost.
#[derive(Clone, Copy, Default)]
pub struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let mut h = self.0;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51AFD7ED558CCD);
        h ^= h >> 33;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // This is the path `[u32; 3]` keys actually take (std hashes the
        // array as one 12-byte slice): fold whole words, not bytes.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.write_u64(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.write_u64(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E3779B97F4A7C15).rotate_left(27);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// The stale-κ identity map type (fast non-cryptographic hashing).
pub type StaleMap = HashMap<CliqueKey, u32, std::hash::BuildHasherDefault<KeyHasher>>;

/// The identity key of r-clique `i` in `space`.
pub fn clique_key<S: CliqueSpace>(space: &S, i: usize, scratch: &mut Vec<VertexId>) -> CliqueKey {
    scratch.clear();
    space.vertices_of(i, scratch);
    scratch.sort_unstable();
    // Hard assert: truncating an r > 3 clique would silently collide
    // distinct cliques in the stale map and break the warm start's
    // upper-bound premise (the generic space can exceed r = 3).
    assert!(scratch.len() <= 3, "clique arity {} exceeds the key width", scratch.len());
    let mut key = [VertexId::MAX; 3];
    for (slot, &v) in key.iter_mut().zip(scratch.iter()) {
        *slot = v;
    }
    key
}

/// Maps every r-clique of `space` to its κ by identity, for carrying a
/// stale decomposition across a graph rebuild.
pub fn stale_kappa_map<S: CliqueSpace>(space: &S, kappa: &[u32]) -> StaleMap {
    assert_eq!(kappa.len(), space.num_cliques(), "kappa length mismatch");
    let mut map = StaleMap::with_capacity_and_hasher(kappa.len(), Default::default());
    let mut scratch = Vec::new();
    for (i, &k) in kappa.iter().enumerate() {
        map.insert(clique_key(space, i, &mut scratch), k);
    }
    map
}

/// The warm-start τ for `new_space`: stale κ looked up by identity, lifted
/// by `lift` (the number of edges inserted since the stale κ was exact) and
/// clamped to the new S-degrees; r-cliques with no stale value (created by
/// the batch) start from their S-degree.
///
/// This is the simple, uniformly-lifted bound. Prefer
/// [`warm_tau_init_local`], which lifts only the cliques the batch can
/// actually have raised and converges in far fewer sweeps.
pub fn warm_tau_init<S: CliqueSpace>(stale: &StaleMap, new_space: &S, lift: u32) -> Vec<u32> {
    let mut scratch = Vec::new();
    (0..new_space.num_cliques())
        .map(|i| {
            let d = new_space.degree(i);
            match stale.get(&clique_key(new_space, i, &mut scratch)) {
                Some(&k) => k.saturating_add(lift).min(d),
                None => d,
            }
        })
        .collect()
}

/// Union–find with path halving; roots carry a "component contains a
/// batch seed" flag.
struct SeedForest {
    parent: Vec<u32>,
    has_seed: Vec<bool>,
}

impl SeedForest {
    fn new(n: usize) -> Self {
        SeedForest { parent: (0..n as u32).collect(), has_seed: vec![false; n] }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let seed = self.has_seed[ra as usize] || self.has_seed[rb as usize];
            self.parent[rb as usize] = ra;
            self.has_seed[ra as usize] = seed;
        }
    }
}

/// A warm start for [`crate::asynchronous::and_resume_awake`]: the τ upper
/// bound plus the cliques that need a first look.
pub struct WarmStart {
    /// Pointwise upper bound on the new κ.
    pub tau: Vec<u32>,
    /// Cliques the batch may have perturbed (new, container-changed, or
    /// lift candidates) — the initial And worklist.
    pub awake: Vec<u32>,
    /// How many surviving cliques were lifted (the candidate set; its
    /// smallness is what makes the warm start cheap).
    pub lifted: usize,
}

/// The locally-lifted warm start for `new_space` after a batch that
/// inserted `lift` edges with endpoints `inserted_ends` and removed edges
/// with endpoints `removed_ends` (endpoint supersets are fine).
///
/// Correctness of the lift: if κ(i) rose to `k + 1` or more, the witness
/// sub-hypergraph for that value is S-connected, contains a container
/// created by the batch (otherwise it already existed, contradicting the
/// stale κ), and every member `j` has new κ ≥ k + 1, hence stale
/// κ(j) ≥ k + 1 − `lift` (the uniform batch bound). A container created
/// by the batch contains an inserted edge, so some member's vertex set
/// meets `inserted_ends`. Candidates are therefore exactly the cliques
/// reachable from a batch-touched clique (or one of its container
/// partners, covering the whole container) through cliques of stale
/// κ ≥ κ(i) + 1 − `lift` — computed here with one κ-descending
/// union–find pass over the container adjacency, the generalization of
/// the incremental-k-core "subcore traversal" to every clique space.
/// Candidates start from `stale + lift` (clamped to the new degree),
/// brand-new cliques from their degree, and everything else *at* its
/// stale value, which deletion monotonicity keeps a valid upper bound.
///
/// The awake set contains every clique whose value or containers the
/// batch may have changed: candidates, new cliques, cliques with a batch
/// endpoint among their vertices, and the container partners of all of
/// those (covering spaces where a changed container has members disjoint
/// from the changed edge). Everything else starts asleep and is woken by
/// the notification mechanism if a neighbor's drop cascades to it; the
/// final certification sweep guarantees exactness regardless.
pub fn warm_tau_init_local<S: CliqueSpace>(
    stale: &StaleMap,
    new_space: &S,
    inserted_ends: &[VertexId],
    removed_ends: &[VertexId],
    lift: u32,
) -> WarmStart {
    let n = new_space.num_cliques();
    let mut scratch = Vec::new();
    let stale_of: Vec<Option<u32>> =
        (0..n).map(|i| stale.get(&clique_key(new_space, i, &mut scratch)).copied()).collect();
    warm_tau_init_of(&stale_of, new_space, inserted_ends, removed_ends, lift)
}

/// [`warm_tau_init_local`] with the stale κ already resolved per new
/// clique id — the form the delta-maintained update path produces
/// directly from its id remaps, skipping the identity-map hashing of both
/// graph versions entirely (`stale_of[i]` is `None` for batch-created
/// cliques).
pub fn warm_tau_init_of<S: CliqueSpace>(
    stale_of: &[Option<u32>],
    new_space: &S,
    inserted_ends: &[VertexId],
    removed_ends: &[VertexId],
    lift: u32,
) -> WarmStart {
    let n = new_space.num_cliques();
    assert_eq!(stale_of.len(), n, "stale_of length mismatch");
    let mut scratch = Vec::new();
    let clamp = |i: usize, v: u32| v.min(new_space.degree(i));

    // Cliques touching any batch endpoint, plus their container partners:
    // the only places a container can have appeared or disappeared. The
    // insertion-touched subset seeds the candidate traversal.
    let all_ends: std::collections::HashSet<VertexId> =
        inserted_ends.iter().chain(removed_ends).copied().collect();
    let ins_ends: std::collections::HashSet<VertexId> = inserted_ends.iter().copied().collect();
    let mut awake = vec![false; n];
    let mut seed = vec![false; n];
    for i in 0..n {
        scratch.clear();
        new_space.vertices_of(i, &mut scratch);
        if stale_of[i].is_none() {
            awake[i] = true;
            seed[i] = true;
        } else if scratch.iter().any(|v| all_ends.contains(v)) {
            awake[i] = true;
            seed[i] = scratch.iter().any(|v| ins_ends.contains(v));
        }
    }
    let direct: Vec<usize> = (0..n).filter(|&i| awake[i]).collect();
    for &i in &direct {
        let spread = seed[i];
        new_space.for_each_neighbor(i, |o| {
            awake[o] = true;
            if spread {
                seed[o] = true;
            }
        });
    }

    let mut candidate = vec![false; n];
    if lift > 0 {
        // Bottleneck traversal on the *cap*: the new kappa'(j) can never
        // exceed cap(j) = min(stale kappa(j) + lift, d_s'(j)), so a witness
        // path for "kappa(i) rose past its stale value" runs entirely
        // through cliques with cap >= stale kappa(i) + 1. Activate cliques
        // in descending cap order (new cliques cap at their degree) and
        // resolve each clique's check once its threshold's active set is
        // complete.
        let cap = |i: usize| match stale_of[i] {
            Some(k) => k.saturating_add(lift).min(new_space.degree(i)),
            None => new_space.degree(i),
        };
        let mut by_level: Vec<u32> = (0..n as u32).collect();
        by_level.sort_unstable_by_key(|&i| std::cmp::Reverse(cap(i as usize)));
        let check_level = |i: usize| stale_of[i].unwrap_or(0) + 1;
        let mut checks: Vec<u32> =
            (0..n as u32).filter(|&i| stale_of[i as usize].is_some()).collect();
        checks.sort_unstable_by_key(|&i| std::cmp::Reverse(check_level(i as usize)));

        let mut forest = SeedForest::new(n);
        let mut active = vec![false; n];
        let mut next_check = 0usize;
        let mut at = 0usize;
        while at < n {
            let t = cap(by_level[at] as usize);
            // Resolve pending checks whose threshold exceeds this level:
            // their active set is exactly the cliques activated so far.
            while next_check < checks.len() && check_level(checks[next_check] as usize) > t {
                let i = checks[next_check];
                next_check += 1;
                // A clique whose own cap is below its check threshold
                // cannot rise at all (inactive here => not a candidate).
                if active[i as usize] {
                    let r = forest.find(i);
                    candidate[i as usize] = forest.has_seed[r as usize];
                }
            }
            // Activate this level, unioning with already-active partners.
            while at < n && cap(by_level[at] as usize) == t {
                let i = by_level[at];
                at += 1;
                active[i as usize] = true;
                if seed[i as usize] {
                    let r = forest.find(i);
                    forest.has_seed[r as usize] = true;
                }
                new_space.for_each_neighbor(i as usize, |o| {
                    if active[o] {
                        forest.union(i, o as u32);
                    }
                });
            }
        }
        for &i in &checks[next_check..] {
            let r = forest.find(i);
            candidate[i as usize] = forest.has_seed[r as usize];
        }
    }

    let mut lifted = 0usize;
    let tau: Vec<u32> = (0..n)
        .map(|i| match stale_of[i] {
            Some(k) if candidate[i] => {
                lifted += 1;
                awake[i] = true;
                clamp(i, k.saturating_add(lift))
            }
            Some(k) => clamp(i, k),
            None => new_space.degree(i),
        })
        .collect();
    let awake: Vec<u32> = (0..n as u32).filter(|&i| awake[i as usize]).collect();
    WarmStart { tau, awake, lifted }
}

/// Applies a batch of insertions and removals to `graph`, returning the new
/// graph and the number of edges actually inserted (duplicates, self-loops
/// and absent removals are ignored). Vertex ids are preserved; the vertex
/// set grows to cover inserted endpoints.
pub fn rebuild_graph(
    graph: &CsrGraph,
    insert: &[(VertexId, VertexId)],
    remove: &[(VertexId, VertexId)],
) -> (CsrGraph, u32) {
    let drop: std::collections::HashSet<(u32, u32)> =
        remove.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
    let new_n = insert
        .iter()
        .map(|&(u, v)| u.max(v) as usize + 1)
        .max()
        .unwrap_or(0)
        .max(graph.num_vertices());
    let mut b =
        GraphBuilder::with_capacity(graph.num_edges() + insert.len()).with_num_vertices(new_n);
    let mut kept = 0usize;
    for &(u, v) in graph.edges() {
        if !drop.contains(&(u, v)) {
            b.add_edge(u, v);
            kept += 1;
        }
    }
    for &(u, v) in insert {
        b.add_edge(u, v);
    }
    let new_graph = b.build();
    let inserted = new_graph.num_edges().saturating_sub(kept) as u32;
    (new_graph, inserted)
}

/// A family of clique spaces constructible from any graph — the hook that
/// lets [`Incremental`] (and the `hdsd-service` engine) rebuild its space
/// after every batch without being tied to one decomposition.
///
/// Beyond the cold build, a kind describes how to *maintain* itself across
/// an edge batch: it owns a [`SpaceKind::Substrate`] (e.g. the triangle
/// list) and splices its [`CachedSpace`] through
/// [`SpaceKind::apply_delta`], so updates never re-enumerate the clique
/// universe.
pub trait SpaceKind: 'static {
    /// The space this kind builds.
    type Space<'g>: CliqueSpace;
    /// Clique substrate kept resident across updates (`()` for the core
    /// space, the maintained [`TriangleList`] for truss and (3,4)).
    type Substrate: Send + Sync + 'static;
    /// Short name for telemetry ("core", "truss", "nucleus34").
    const NAME: &'static str;
    /// Builds the space over `graph`.
    fn build(graph: &CsrGraph) -> Self::Space<'_>;
    /// Builds the substrate for a fresh graph (cold enumeration).
    fn init_substrate(graph: &CsrGraph) -> Self::Substrate;
    /// Materializes the owned snapshot from a graph plus its substrate.
    fn build_cached(graph: &CsrGraph, substrate: &Self::Substrate) -> CachedSpace;
    /// Splices `old_cached` across the batch `ed` (which turned
    /// `old_graph` into `new_graph`), updating the substrate in place and
    /// returning the new snapshot with its clique-id remap.
    fn apply_delta(
        substrate: &mut Self::Substrate,
        old_cached: &CachedSpace,
        old_graph: &CsrGraph,
        new_graph: &CsrGraph,
        ed: &CsrDelta,
    ) -> SpaceDelta;
    /// The stale-κ identity map for a graph whose space may no longer
    /// exist. The default builds the space; kinds whose keys are readable
    /// straight off the graph override it to skip that cost.
    fn stale_map(graph: &CsrGraph, kappa: &[u32]) -> StaleMap {
        Self::stale_map_from(&Self::build(graph), kappa)
    }
    /// The stale-κ identity map for an already-built space.
    fn stale_map_from(space: &Self::Space<'_>, kappa: &[u32]) -> StaleMap {
        stale_kappa_map(space, kappa)
    }
}

/// The (1,2) k-core kind: r-cliques are vertices, ids are stable.
pub enum CoreKind {}

impl SpaceKind for CoreKind {
    type Space<'g> = CoreSpace<'g>;
    type Substrate = ();
    const NAME: &'static str = "core";
    fn build(graph: &CsrGraph) -> CoreSpace<'_> {
        CoreSpace::new(graph)
    }
    fn init_substrate(_graph: &CsrGraph) -> Self::Substrate {}
    fn build_cached(graph: &CsrGraph, _substrate: &Self::Substrate) -> CachedSpace {
        CachedSpace::build(&CoreSpace::new(graph))
    }
    fn apply_delta(
        _substrate: &mut Self::Substrate,
        _old_cached: &CachedSpace,
        old_graph: &CsrGraph,
        new_graph: &CsrGraph,
        _ed: &CsrDelta,
    ) -> SpaceDelta {
        crate::delta::core_space_delta(new_graph, old_graph.num_vertices())
    }
    fn stale_map(graph: &CsrGraph, kappa: &[u32]) -> StaleMap {
        // Vertex ids are the clique ids; no space construction needed.
        let mut map = StaleMap::with_capacity_and_hasher(kappa.len(), Default::default());
        for (v, &k) in kappa.iter().enumerate().take(graph.num_vertices()) {
            map.insert([v as VertexId, VertexId::MAX, VertexId::MAX], k);
        }
        map
    }
}

/// The (2,3) k-truss kind: r-cliques are edges, keyed by endpoints.
pub enum TrussKind {}

impl SpaceKind for TrussKind {
    type Space<'g> = TrussSpace<'g>;
    type Substrate = TriangleList;
    const NAME: &'static str = "truss";
    fn build(graph: &CsrGraph) -> TrussSpace<'_> {
        TrussSpace::on_the_fly(graph)
    }
    fn init_substrate(graph: &CsrGraph) -> TriangleList {
        TriangleList::build(graph)
    }
    fn build_cached(graph: &CsrGraph, substrate: &TriangleList) -> CachedSpace {
        CachedSpace::build(&TrussSpace::with_triangles(graph, substrate))
    }
    fn apply_delta(
        substrate: &mut TriangleList,
        old_cached: &CachedSpace,
        _old_graph: &CsrGraph,
        new_graph: &CsrGraph,
        ed: &CsrDelta,
    ) -> SpaceDelta {
        let td = hdsd_graph::triangle_delta(substrate, new_graph, ed);
        let out = crate::delta::truss_space_delta(old_cached, substrate, new_graph, ed, &td);
        *substrate = td.list;
        out
    }
    fn stale_map(graph: &CsrGraph, kappa: &[u32]) -> StaleMap {
        // Edge endpoints come straight off the edge list; skip the
        // per-edge triangle counting a space build would pay.
        assert_eq!(kappa.len(), graph.num_edges(), "kappa length mismatch");
        let mut map = StaleMap::with_capacity_and_hasher(kappa.len(), Default::default());
        for (&(u, v), &k) in graph.edges().iter().zip(kappa) {
            map.insert([u.min(v), u.max(v), VertexId::MAX], k);
        }
        map
    }
}

/// The (3,4) nucleus kind: r-cliques are triangles, keyed by vertex triple.
pub enum Nucleus34Kind {}

impl SpaceKind for Nucleus34Kind {
    type Space<'g> = Nucleus34Space<'g>;
    type Substrate = TriangleList;
    const NAME: &'static str = "nucleus34";
    fn build(graph: &CsrGraph) -> Nucleus34Space<'_> {
        Nucleus34Space::on_the_fly(graph)
    }
    fn init_substrate(graph: &CsrGraph) -> TriangleList {
        TriangleList::build(graph)
    }
    fn build_cached(graph: &CsrGraph, substrate: &TriangleList) -> CachedSpace {
        CachedSpace::build(&Nucleus34Space::with_triangles(graph, substrate))
    }
    fn apply_delta(
        substrate: &mut TriangleList,
        old_cached: &CachedSpace,
        old_graph: &CsrGraph,
        new_graph: &CsrGraph,
        ed: &CsrDelta,
    ) -> SpaceDelta {
        let td = hdsd_graph::triangle_delta(substrate, new_graph, ed);
        let out = crate::delta::nucleus34_space_delta(
            old_cached, old_graph, substrate, new_graph, ed, &td,
        );
        *substrate = td.list;
        out
    }
}

/// Outcome of one warm refresh (see [`refresh_resume`]).
pub struct RefreshOutcome {
    /// Full convergence telemetry; `result.tau` is the exact new κ.
    pub result: ConvergenceResult,
    /// Cliques seeded awake (batch-perturbed).
    pub awake: usize,
    /// Surviving cliques lifted by the candidate traversal.
    pub lifted: usize,
    /// The initially-awake clique ids (`awake` is its length): every
    /// clique the batch may have touched structurally — new cliques,
    /// cliques in a created/destroyed container, candidates, and their
    /// container partners. This is exactly the dirty-seed contract of
    /// [`crate::hierarchy::repair_hierarchy`].
    pub perturbed: Vec<u32>,
}

impl RefreshOutcome {
    /// The dirty seed for an incremental hierarchy repair after this
    /// refresh: the structurally perturbed set plus every clique whose κ
    /// actually changed (cascaded drops can reach initially-asleep
    /// cliques). `stale_of` must be the same vector the refresh ran with.
    pub fn repair_dirty_seed(&self, stale_of: &[Option<u32>]) -> Vec<u32> {
        repair_dirty_seed(&self.perturbed, stale_of, &self.result.tau)
    }
}

/// The canonical warm refresh, shared by [`Incremental::update_edges`] and
/// the `hdsd-service` engine: candidate-lifted warm start over the stale
/// identity map ([`warm_tau_init_local`]), τ-sorted processing order (the
/// warm τ is within `inserted` of κ, so this approximates the Theorem-4
/// peeling order), and an awake-seeded resume whose certification sweep
/// guarantees the exact κ of the new graph.
pub fn refresh_resume<S: CliqueSpace>(
    stale: &StaleMap,
    new_space: &S,
    inserted_ends: &[VertexId],
    removed_ends: &[VertexId],
    inserted: u32,
    cfg: &LocalConfig,
) -> RefreshOutcome {
    let warm = warm_tau_init_local(stale, new_space, inserted_ends, removed_ends, inserted);
    resume_from(warm, new_space, cfg)
}

/// [`refresh_resume`] with the stale κ resolved positionally (see
/// [`warm_tau_init_of`]): the warm refresh of the delta-maintained update
/// path, with no identity hashing anywhere.
pub fn refresh_resume_of<S: CliqueSpace>(
    stale_of: &[Option<u32>],
    new_space: &S,
    inserted_ends: &[VertexId],
    removed_ends: &[VertexId],
    inserted: u32,
    cfg: &LocalConfig,
) -> RefreshOutcome {
    refresh_resume_of_within(
        stale_of,
        new_space,
        inserted_ends,
        removed_ends,
        inserted,
        cfg,
        &CancelToken::none(),
    )
    .expect("an unarmed token never cancels")
}

/// [`refresh_resume_of`] with cooperative cancellation threaded into the
/// underlying And resume ([`crate::and_resume_awake_within`]). The warm
/// start itself (candidate traversal + τ sort) is not cancellable — it is
/// linear in the batch's neighborhood, not in the graph — so a trip lands
/// at the first sweep boundary. On `Err` nothing has been published;
/// callers keep serving the stale decomposition.
#[allow(clippy::too_many_arguments)]
pub fn refresh_resume_of_within<S: CliqueSpace>(
    stale_of: &[Option<u32>],
    new_space: &S,
    inserted_ends: &[VertexId],
    removed_ends: &[VertexId],
    inserted: u32,
    cfg: &LocalConfig,
    cancel: &CancelToken,
) -> Result<RefreshOutcome, Cancelled> {
    let warm = warm_tau_init_of(stale_of, new_space, inserted_ends, removed_ends, inserted);
    resume_from_within(warm, new_space, cfg, cancel)
}

fn resume_from<S: CliqueSpace>(
    warm: WarmStart,
    new_space: &S,
    cfg: &LocalConfig,
) -> RefreshOutcome {
    resume_from_within(warm, new_space, cfg, &CancelToken::none())
        .expect("an unarmed token never cancels")
}

fn resume_from_within<S: CliqueSpace>(
    warm: WarmStart,
    new_space: &S,
    cfg: &LocalConfig,
    cancel: &CancelToken,
) -> Result<RefreshOutcome, Cancelled> {
    hdsd_telemetry::span!("refresh.resume");
    let mut order: Vec<u32> = (0..warm.tau.len() as u32).collect();
    order.sort_unstable_by_key(|&i| warm.tau[i as usize]);
    let result = and_resume_awake_within(
        new_space,
        cfg,
        &Order::Custom(order),
        warm.tau,
        &warm.awake,
        cancel,
        &mut |_| {},
    )?;
    debug_assert!(result.converged);
    Ok(RefreshOutcome {
        result,
        awake: warm.awake.len(),
        lifted: warm.lifted,
        perturbed: warm.awake,
    })
}

/// Dynamically maintained decomposition of one space kind.
///
/// Owns the graph, the kind's clique substrate, and the space snapshot;
/// [`Incremental::insert_edges`] and [`Incremental::remove_edges`] apply a
/// batch by **splicing** all three ([`hdsd_graph::apply_edge_batch`] plus
/// [`SpaceKind::apply_delta`]) and refresh κ by a warm-started local run
/// whose stale values carry over positionally through the id remaps — no
/// graph rebuild, no global triangle/K4 recount, no identity hashing.
/// `Incremental<CoreKind>` is the historical [`IncrementalCore`];
/// `Incremental<TrussKind>` and `Incremental<Nucleus34Kind>` maintain
/// truss and (3,4)-nucleus indices the same way.
pub struct Incremental<K: SpaceKind> {
    graph: CsrGraph,
    substrate: K::Substrate,
    cached: CachedSpace,
    kappa: Vec<u32>,
    cfg: LocalConfig,
    _kind: PhantomData<K>,
}

/// Dynamically maintained core decomposition (the original API).
pub type IncrementalCore = Incremental<CoreKind>;

impl<K: SpaceKind> Incremental<K> {
    /// Builds the initial decomposition (a full peel).
    pub fn new(graph: CsrGraph) -> Self {
        Self::with_config(graph, LocalConfig::sequential())
    }

    /// Builds the initial decomposition with a custom refresh config.
    pub fn with_config(graph: CsrGraph, cfg: LocalConfig) -> Self {
        let substrate = K::init_substrate(&graph);
        let cached = K::build_cached(&graph, &substrate);
        // The snapshot's container rows are already flat: peel them with
        // the monomorphized engine instead of re-walking the callbacks —
        // through the barrier-free drain when the config asks for threads
        // (κ is bit-identical either way).
        let kappa = if cfg.parallel.threads > 1 {
            crate::peel::peel_parallel_flat(cached.flat(), cfg.parallel).kappa
        } else {
            crate::peel::peel_flat(cached.flat()).kappa
        };
        Incremental { graph, substrate, cached, kappa, cfg, _kind: PhantomData }
    }

    /// Current graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Current exact κ indices (ids follow the current graph's space).
    pub fn kappa(&self) -> &[u32] {
        &self.kappa
    }

    /// The resident space snapshot the κ ids refer to.
    pub fn cached(&self) -> &CachedSpace {
        &self.cached
    }

    /// Inserts a batch of edges (duplicates and self-loops ignored) and
    /// refreshes κ. Returns the number of sweeps the refresh needed.
    pub fn insert_edges(&mut self, edges: &[(VertexId, VertexId)]) -> usize {
        self.update_edges(edges, &[])
    }

    /// Removes a batch of edges (absent edges ignored) and refreshes κ.
    /// Returns the number of sweeps the refresh needed.
    pub fn remove_edges(&mut self, edges: &[(VertexId, VertexId)]) -> usize {
        self.update_edges(&[], edges)
    }

    /// Applies a mixed batch in one splice + one warm-started refresh.
    /// Returns the number of sweeps the refresh needed.
    pub fn update_edges(
        &mut self,
        insert: &[(VertexId, VertexId)],
        remove: &[(VertexId, VertexId)],
    ) -> usize {
        self.update_edges_outcome(insert, remove).sweeps
    }

    /// [`Incremental::update_edges`] returning the full batch outcome: the
    /// clique-id remap and the changed-κ/perturbed set the refresh already
    /// computes internally — everything [`Hierarchy::repair`] needs to
    /// repair a forest of the pre-batch graph instead of rebuilding it.
    ///
    /// [`Hierarchy::repair`]: crate::hierarchy::Hierarchy::repair
    pub fn update_edges_outcome(
        &mut self,
        insert: &[(VertexId, VertexId)],
        remove: &[(VertexId, VertexId)],
    ) -> BatchOutcome {
        let (new_graph, ed) = hdsd_graph::apply_edge_batch(&self.graph, insert, remove);
        let old_num_cliques = self.cached.num_cliques();
        let sd = K::apply_delta(&mut self.substrate, &self.cached, &self.graph, &new_graph, &ed);
        // Stale κ carried positionally: new clique → old clique → old κ.
        let stale_of: Vec<Option<u32>> = sd
            .new_to_old
            .iter()
            .map(|&o| if o == hdsd_graph::NO_ID { None } else { Some(self.kappa[o as usize]) })
            .collect();
        let ins_ends = ed.inserted_endpoints(&new_graph);
        let rm_ends = ed.removed_endpoints(&self.graph);
        let out =
            refresh_resume_of(&stale_of, &sd.cached, &ins_ends, &rm_ends, ed.inserted(), &self.cfg);
        self.graph = new_graph;
        self.cached = sd.cached;
        self.kappa = out.result.tau;
        BatchOutcome {
            sweeps: out.result.sweeps,
            old_num_cliques,
            new_to_old: sd.new_to_old,
            perturbed: out.perturbed,
            stale_of,
        }
    }
}

/// What one [`Incremental::update_edges_outcome`] batch did — the inputs a
/// hierarchy repair needs, reported instead of recomputed.
pub struct BatchOutcome {
    /// Sweeps the warm refresh needed.
    pub sweeps: usize,
    /// Clique count of the pre-batch space.
    pub old_num_cliques: usize,
    /// New clique id → old clique id ([`hdsd_graph::NO_ID`] for created).
    pub new_to_old: Vec<u32>,
    /// New clique ids the refresh seeded awake (structurally perturbed).
    pub perturbed: Vec<u32>,
    /// Stale κ per new clique id, as the refresh ran with it (`None` for
    /// batch-created cliques). Kept so the dirty seed can be derived on
    /// demand instead of on every batch.
    stale_of: Vec<Option<u32>>,
}

impl BatchOutcome {
    /// The dirty seed for repairing a hierarchy across this batch:
    /// `perturbed` plus every clique whose κ actually changed. `kappa`
    /// must be the post-batch exact κ (i.e. [`Incremental::kappa`] right
    /// after the update). Computed lazily — only hierarchy-repairing
    /// callers pay the scan.
    pub fn repair_dirty_seed(&self, kappa: &[u32]) -> Vec<u32> {
        repair_dirty_seed(&self.perturbed, &self.stale_of, kappa)
    }
}

/// `perturbed ∪ {i : stale_of[i] ≠ Some(kappa[i])}` — the dirty-seed
/// contract of [`crate::hierarchy::repair_hierarchy`], shared by
/// [`RefreshOutcome::repair_dirty_seed`] and
/// [`BatchOutcome::repair_dirty_seed`].
fn repair_dirty_seed(perturbed: &[u32], stale_of: &[Option<u32>], kappa: &[u32]) -> Vec<u32> {
    assert_eq!(stale_of.len(), kappa.len(), "stale_of length mismatch");
    let mut dirty = vec![false; kappa.len()];
    for &i in perturbed {
        dirty[i as usize] = true;
    }
    for (i, (&stale, &k)) in stale_of.iter().zip(kappa).enumerate() {
        if stale != Some(k) {
            dirty[i] = true;
        }
    }
    (0..kappa.len() as u32).filter(|&i| dirty[i as usize]).collect()
}

impl Incremental<CoreKind> {
    /// Current exact core numbers (alias of [`Incremental::kappa`] kept for
    /// the original `IncrementalCore` API).
    pub fn core_numbers(&self) -> &[u32] {
        &self.kappa
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::core_numbers;
    use crate::peel::peel;
    use crate::snd::snd;

    fn check_exact(inc: &IncrementalCore) {
        assert_eq!(inc.core_numbers(), core_numbers(inc.graph()).as_slice());
    }

    fn check_exact_kind<K: SpaceKind>(inc: &Incremental<K>) {
        let space = K::build(inc.graph());
        assert_eq!(inc.kappa(), peel(&space).kappa.as_slice(), "{} diverged", K::NAME);
    }

    #[test]
    fn insertions_match_from_scratch() {
        let g = hdsd_datasets::erdos_renyi_gnm(100, 300, 7);
        let mut inc = IncrementalCore::new(g);
        check_exact(&inc);
        inc.insert_edges(&[(0, 50), (1, 51), (2, 52)]);
        check_exact(&inc);
        // growing the vertex set on the fly
        inc.insert_edges(&[(99, 120), (120, 121)]);
        assert_eq!(inc.graph().num_vertices(), 122);
        check_exact(&inc);
    }

    #[test]
    fn deletions_match_from_scratch() {
        let g = hdsd_datasets::holme_kim(120, 4, 0.5, 3);
        let mut inc = IncrementalCore::new(g);
        let some_edges: Vec<(u32, u32)> = inc.graph().edges().iter().copied().step_by(17).collect();
        inc.remove_edges(&some_edges);
        check_exact(&inc);
        // removing a non-existent edge is a no-op
        let before = inc.graph().num_edges();
        inc.remove_edges(&[(0, 0), (119, 118)]);
        assert!(inc.graph().num_edges() <= before);
        check_exact(&inc);
    }

    #[test]
    fn interleaved_updates_stay_exact() {
        let g = hdsd_datasets::erdos_renyi_gnm(60, 150, 11);
        let mut inc = IncrementalCore::new(g);
        for round in 0..5u32 {
            inc.insert_edges(&[(round, 59 - round), (round * 2, round * 2 + 30)]);
            check_exact(&inc);
            let e = inc.graph().edges()[round as usize * 3];
            inc.remove_edges(&[e]);
            check_exact(&inc);
        }
    }

    #[test]
    fn truss_mixed_batches_stay_exact() {
        let g = hdsd_datasets::holme_kim(150, 5, 0.6, 5);
        let mut inc: Incremental<TrussKind> = Incremental::new(g);
        check_exact_kind(&inc);
        for round in 0..4u32 {
            let victims: Vec<(u32, u32)> = inc
                .graph()
                .edges()
                .iter()
                .copied()
                .skip(round as usize)
                .step_by(41)
                .take(5)
                .collect();
            let fresh: Vec<(u32, u32)> =
                (0..5).map(|i| (round * 7 + i, (round * 11 + 3 * i + 40) % 150)).collect();
            inc.update_edges(&fresh, &victims);
            check_exact_kind(&inc);
        }
    }

    #[test]
    fn nucleus34_mixed_batches_stay_exact() {
        let g = hdsd_datasets::planted_partition(&[14, 14, 14], 0.7, 0.05, 9);
        let mut inc: Incremental<Nucleus34Kind> = Incremental::new(g);
        check_exact_kind(&inc);
        for round in 0..3u32 {
            let victims: Vec<(u32, u32)> = inc
                .graph()
                .edges()
                .iter()
                .copied()
                .skip(round as usize)
                .step_by(29)
                .take(4)
                .collect();
            let fresh: Vec<(u32, u32)> =
                (0..4).map(|i| (round * 3 + i, (round * 5 + 2 * i + 20) % 42)).collect();
            inc.update_edges(&fresh, &victims);
            check_exact_kind(&inc);
        }
    }

    #[test]
    fn warm_start_uses_fewer_sweeps_than_cold_start() {
        let g = hdsd_datasets::thin_edges(&hdsd_datasets::holme_kim(800, 8, 0.5, 9), 0.7, 9);
        let cold = {
            let space = CoreSpace::new(&g);
            snd(&space, &LocalConfig::sequential()).sweeps
        };
        let mut inc = IncrementalCore::new(g);
        let sweeps = inc.insert_edges(&[(0, 400)]);
        assert!(sweeps < cold, "warm start took {sweeps} sweeps, cold start {cold}");
        check_exact(&inc);
    }

    /// Shared harness: applies a mixed batch through the warm-start path
    /// and asserts exactness plus a strictly cheaper refresh than a cold
    /// And run on the updated graph (both sweeps and recomputations).
    fn assert_warm_beats_cold<K: SpaceKind>(
        g: hdsd_graph::CsrGraph,
        insert: &[(u32, u32)],
        remove: &[(u32, u32)],
    ) {
        let cfg = LocalConfig::sequential();
        let kappa = peel(&K::build(&g)).kappa;
        let stale = K::stale_map(&g, &kappa);
        let (g2, inserted) = rebuild_graph(&g, insert, remove);
        let cached = crate::space::CachedSpace::build(&K::build(&g2));
        let exact = peel(&cached).kappa;
        let cold = crate::asynchronous::and(&cached, &cfg, &Order::Natural);
        assert_eq!(cold.tau, exact);

        let ins_ends: Vec<u32> = insert.iter().flat_map(|&(u, v)| [u, v]).collect();
        let rm_ends: Vec<u32> = remove.iter().flat_map(|&(u, v)| [u, v]).collect();
        let out = refresh_resume(&stale, &cached, &ins_ends, &rm_ends, inserted, &cfg);
        let r = out.result;
        assert!(r.converged);
        assert_eq!(r.tau, exact, "{} warm refresh diverged", K::NAME);
        // Sweep counts are order-sensitive (canonical clique ids shift
        // them by ±1 on small graphs); recomputation count below is the
        // robust cheapness metric.
        assert!(
            r.sweeps <= cold.sweeps,
            "{}: warm took {} sweeps, cold {}",
            K::NAME,
            r.sweeps,
            cold.sweeps
        );
        assert!(
            r.total_processed() < cold.total_processed(),
            "{}: warm recomputed {}, cold {}",
            K::NAME,
            r.total_processed(),
            cold.total_processed()
        );
    }

    #[test]
    fn truss_warm_start_beats_cold_start_on_mixed_batch() {
        let g = hdsd_datasets::thin_edges(&hdsd_datasets::holme_kim(500, 8, 0.6, 13), 0.7, 13);
        let rm: Vec<(u32, u32)> = g.edges().iter().copied().step_by(97).take(4).collect();
        assert_warm_beats_cold::<TrussKind>(g, &[(0, 250), (1, 251)], &rm);
    }

    #[test]
    fn nucleus34_warm_start_beats_cold_start_on_mixed_batch() {
        let g = hdsd_datasets::planted_partition(&[25, 25, 25, 25], 0.5, 0.04, 31);
        let rm: Vec<(u32, u32)> = g.edges().iter().copied().step_by(113).take(3).collect();
        assert_warm_beats_cold::<Nucleus34Kind>(g, &[(0, 26), (1, 27)], &rm);
    }

    #[test]
    fn empty_batches_are_noops() {
        let g = hdsd_datasets::erdos_renyi_gnm(30, 60, 1);
        let mut inc = IncrementalCore::new(g);
        let before = inc.core_numbers().to_vec();
        inc.insert_edges(&[]);
        inc.remove_edges(&[]);
        assert_eq!(inc.core_numbers(), before.as_slice());
    }

    #[test]
    fn stale_maps_key_by_identity_across_rebuilds() {
        let g = hdsd_datasets::holme_kim(60, 4, 0.5, 2);
        let kappa = peel(&TrussSpace::on_the_fly(&g)).kappa;
        let stale = TrussKind::stale_map(&g, &kappa);
        // Rebuild with one extra edge: surviving edges find their old κ.
        let (g2, inserted) = rebuild_graph(&g, &[(0, 59)], &[]);
        assert_eq!(inserted, u32::from(!g.has_edge(0, 59)));
        let space2 = TrussSpace::on_the_fly(&g2);
        let tau = warm_tau_init(&stale, &space2, inserted);
        let exact2 = peel(&space2).kappa;
        for (i, (&t, &k)) in tau.iter().zip(&exact2).enumerate() {
            assert!(t >= k, "warm τ[{i}] = {t} below κ = {k}");
        }
    }
}
