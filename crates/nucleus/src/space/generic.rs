//! Generic (r, s) space via explicit hypergraph construction.
//!
//! Enumerates every r-clique and s-clique of the graph and materializes the
//! full incidence — exactly the hypergraph the paper notes is infeasible at
//! scale (§5) but invaluable for validation: the specialized (1,2), (2,3)
//! and (3,4) spaces are cross-checked against this one in tests, and it
//! makes exotic decompositions like (1,3) or (2,4) available on small
//! graphs.

use std::collections::HashMap;

use hdsd_graph::{CsrGraph, VertexId};

use super::CliqueSpace;

/// Explicitly materialized (r, s) clique space.
pub struct GenericSpace<'g> {
    #[allow(dead_code)]
    graph: &'g CsrGraph,
    r: usize,
    s: usize,
    /// Sorted vertex lists of the r-cliques, concatenated (`r` each).
    r_verts: Vec<VertexId>,
    /// CSR: container group offsets per r-clique. Each group has
    /// `binom(s,r) − 1` other-member ids in `others_flat`.
    cont_offsets: Vec<usize>,
    others_flat: Vec<usize>,
    /// Others per container group.
    group: usize,
}

impl<'g> GenericSpace<'g> {
    /// Builds the space by full enumeration. Intended for small graphs —
    /// cost grows as `O(n^s)` in the worst case.
    ///
    /// # Panics
    /// Panics unless `0 < r < s`.
    pub fn new(graph: &'g CsrGraph, r: usize, s: usize) -> Self {
        assert!(r >= 1 && s > r, "GenericSpace requires 0 < r < s (got r={r}, s={s})");
        let r_cliques = enumerate_cliques(graph, r);
        let s_cliques = enumerate_cliques(graph, s);

        let mut index: HashMap<&[VertexId], usize> = HashMap::with_capacity(r_cliques.len());
        for (i, rc) in r_cliques.chunks(r).enumerate() {
            index.insert(rc, i);
        }

        let group = binom(s, r) - 1;
        // First pass: count containers per r-clique.
        let mut counts = vec![0usize; r_cliques.len() / r.max(1)];
        let mut scratch: Vec<usize> = Vec::with_capacity(group + 1);
        let mut combo: Vec<VertexId> = vec![0; r];
        for sc in s_cliques.chunks(s) {
            for_each_combination(sc, r, &mut combo, &mut |c| {
                let id = index[c];
                counts[id] += 1;
            });
        }
        let n_r = counts.len();
        let mut cont_offsets = vec![0usize; n_r + 1];
        for i in 0..n_r {
            cont_offsets[i + 1] = cont_offsets[i] + counts[i];
        }
        let mut others_flat = vec![0usize; cont_offsets[n_r] * group];
        let mut cursor = cont_offsets.clone();
        for sc in s_cliques.chunks(s) {
            // Member r-clique ids of this s-clique.
            scratch.clear();
            for_each_combination(sc, r, &mut combo, &mut |c| {
                scratch.push(index[c]);
            });
            for (k, &member) in scratch.iter().enumerate() {
                let at = cursor[member];
                cursor[member] += 1;
                let base = at * group;
                let mut w = 0;
                for (j, &other) in scratch.iter().enumerate() {
                    if j != k {
                        others_flat[base + w] = other;
                        w += 1;
                    }
                }
            }
        }

        GenericSpace { graph, r, s, r_verts: r_cliques, cont_offsets, others_flat, group }
    }

    /// Number of r-cliques found.
    pub fn num_r_cliques(&self) -> usize {
        self.cont_offsets.len() - 1
    }

    /// Sorted vertices of r-clique `i`.
    pub fn r_clique_vertices(&self, i: usize) -> &[VertexId] {
        &self.r_verts[i * self.r..(i + 1) * self.r]
    }
}

impl CliqueSpace for GenericSpace<'_> {
    fn num_cliques(&self) -> usize {
        self.cont_offsets.len() - 1
    }

    fn initial_degrees(&self) -> Vec<u32> {
        (0..self.num_cliques())
            .map(|i| (self.cont_offsets[i + 1] - self.cont_offsets[i]) as u32)
            .collect()
    }

    fn degree(&self, i: usize) -> u32 {
        (self.cont_offsets[i + 1] - self.cont_offsets[i]) as u32
    }

    fn try_for_each_container<F: FnMut(&[usize]) -> std::ops::ControlFlow<()>>(
        &self,
        i: usize,
        mut f: F,
    ) -> std::ops::ControlFlow<()> {
        for c in self.cont_offsets[i]..self.cont_offsets[i + 1] {
            f(&self.others_flat[c * self.group..(c + 1) * self.group])?;
        }
        std::ops::ControlFlow::Continue(())
    }

    fn r(&self) -> usize {
        self.r
    }

    fn s(&self) -> usize {
        self.s
    }

    fn vertices_of(&self, i: usize, out: &mut Vec<VertexId>) {
        out.extend_from_slice(self.r_clique_vertices(i));
    }

    fn name(&self) -> String {
        format!("({},{}) generic", self.r, self.s)
    }

    fn prefers_flat_cache(&self) -> bool {
        false // already materialized as flat CSR internally
    }
}

/// Enumerates all k-cliques (vertices ascending), concatenated into one
/// vector of length `count * k`.
pub fn enumerate_cliques(g: &CsrGraph, k: usize) -> Vec<VertexId> {
    let mut out = Vec::new();
    if k == 0 {
        return out;
    }
    let mut current: Vec<VertexId> = Vec::with_capacity(k);
    for v in g.vertices() {
        current.push(v);
        if k == 1 {
            out.push(v);
        } else {
            let candidates: Vec<VertexId> =
                g.neighbors(v).iter().copied().filter(|&w| w > v).collect();
            extend_cliques(g, k, &mut current, &candidates, &mut out);
        }
        current.pop();
    }
    out
}

fn extend_cliques(
    g: &CsrGraph,
    k: usize,
    current: &mut Vec<VertexId>,
    candidates: &[VertexId],
    out: &mut Vec<VertexId>,
) {
    for (i, &w) in candidates.iter().enumerate() {
        current.push(w);
        if current.len() == k {
            out.extend_from_slice(current);
        } else {
            // New candidates: later candidates adjacent to w.
            let next: Vec<VertexId> =
                candidates[i + 1..].iter().copied().filter(|&x| g.has_edge(w, x)).collect();
            extend_cliques(g, k, current, &next, out);
        }
        current.pop();
    }
}

/// Calls `f` with every size-`r` combination (ascending) of `set`.
fn for_each_combination(
    set: &[VertexId],
    r: usize,
    combo: &mut Vec<VertexId>,
    f: &mut impl FnMut(&[VertexId]),
) {
    fn rec(
        set: &[VertexId],
        r: usize,
        start: usize,
        combo: &mut Vec<VertexId>,
        depth: usize,
        f: &mut impl FnMut(&[VertexId]),
    ) {
        if depth == r {
            f(&combo[..r]);
            return;
        }
        for i in start..=set.len() - (r - depth) {
            combo[depth] = set[i];
            rec(set, r, i + 1, combo, depth + 1, f);
        }
    }
    if r <= set.len() {
        rec(set, r, 0, combo, 0, f);
    }
}

fn binom(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num = 1usize;
    for i in 0..k {
        num = num * (n - i) / (i + 1);
    }
    num
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsd_graph::graph_from_edges;

    fn complete(n: u32) -> CsrGraph {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        graph_from_edges(edges)
    }

    #[test]
    fn clique_enumeration_counts_on_k5() {
        let g = complete(5);
        assert_eq!(enumerate_cliques(&g, 1).len(), 5);
        assert_eq!(enumerate_cliques(&g, 2).len() / 2, 10);
        assert_eq!(enumerate_cliques(&g, 3).len() / 3, 10);
        assert_eq!(enumerate_cliques(&g, 4).len() / 4, 5);
        assert_eq!(enumerate_cliques(&g, 5).len() / 5, 1);
        assert_eq!(enumerate_cliques(&g, 6).len(), 0);
    }

    #[test]
    fn binom_values() {
        assert_eq!(binom(4, 2), 6);
        assert_eq!(binom(5, 3), 10);
        assert_eq!(binom(3, 3), 1);
        assert_eq!(binom(2, 3), 0);
    }

    #[test]
    fn generic_12_matches_core_semantics() {
        let g = graph_from_edges([(0, 1), (0, 2), (1, 2), (2, 3)]);
        let sp = GenericSpace::new(&g, 1, 2);
        assert_eq!(sp.num_cliques(), 4);
        assert_eq!(sp.initial_degrees(), vec![2, 2, 3, 1]);
        let mut containers = Vec::new();
        sp.for_each_container(2, |o| containers.push(o.to_vec()));
        containers.sort();
        assert_eq!(containers, vec![vec![0], vec![1], vec![3]]);
    }

    #[test]
    fn generic_23_matches_truss_semantics_on_k4() {
        let g = complete(4);
        let sp = GenericSpace::new(&g, 2, 3);
        assert_eq!(sp.num_cliques(), 6);
        assert_eq!(sp.initial_degrees(), vec![2; 6]);
        // every container has 2 others
        sp.for_each_container(0, |o| assert_eq!(o.len(), 2));
    }

    #[test]
    fn generic_14_exotic_space() {
        // (1,4): vertices scored by K4 participation.
        let g = complete(5);
        let sp = GenericSpace::new(&g, 1, 4);
        // every vertex of K5 is in binom(4,3)=4 K4s
        assert_eq!(sp.initial_degrees(), vec![4; 5]);
        sp.for_each_container(0, |o| assert_eq!(o.len(), 3));
    }

    #[test]
    fn r_clique_vertices_are_sorted() {
        let g = complete(4);
        let sp = GenericSpace::new(&g, 3, 4);
        for i in 0..sp.num_cliques() {
            let vs = sp.r_clique_vertices(i);
            assert!(vs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    #[should_panic(expected = "GenericSpace requires")]
    fn rejects_bad_rs() {
        let g = complete(3);
        GenericSpace::new(&g, 2, 2);
    }
}
