//! The (1,3) space: vertices scored by triangle participation.
//!
//! Not one of the paper's three headline instances, but squarely inside
//! its framework ("our algorithms work for any r < s"): r-cliques are
//! vertices, s-cliques are triangles, so the k-(1,3) nucleus is a maximal
//! triangle-connected subgraph in which every vertex lies in ≥ k
//! triangles. This is the "triangle k-core" of Zhang–Parthasarathy, a
//! popular clique-relaxation in its own right; having it specialized (the
//! generic space materializes the full hypergraph) demonstrates what
//! adopting the framework for a new (r, s) takes: ~100 lines.
//!
//! Containers of a vertex `v` are enumerated on the fly: for each neighbor
//! `u`, merge-intersect `N(v)` and `N(u)` keeping the third vertex `w > u`
//! so each triangle at `v` appears exactly once.

use hdsd_graph::{CsrGraph, VertexId};

use super::CliqueSpace;

/// (1,3) vertex-by-triangle view of a graph.
pub struct Vertex13Space<'g> {
    graph: &'g CsrGraph,
    tri_counts: Vec<u32>,
}

impl<'g> Vertex13Space<'g> {
    /// Builds the space (counts per-vertex triangles once).
    pub fn new(graph: &'g CsrGraph) -> Self {
        let per_edge = hdsd_graph::count_triangles_per_edge(graph);
        let mut tri_counts = vec![0u32; graph.num_vertices()];
        for (e, &c) in per_edge.iter().enumerate() {
            let (u, v) = graph.edge_endpoints(e as u32);
            // Each triangle at a vertex is counted once per incident edge
            // pair; summing edge counts per endpoint counts each triangle
            // twice (two incident edges).
            tri_counts[u as usize] += c;
            tri_counts[v as usize] += c;
        }
        for c in tri_counts.iter_mut() {
            debug_assert!(c.is_multiple_of(2));
            *c /= 2;
        }
        Vertex13Space { graph, tri_counts }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }
}

impl CliqueSpace for Vertex13Space<'_> {
    fn num_cliques(&self) -> usize {
        self.graph.num_vertices()
    }

    fn initial_degrees(&self) -> Vec<u32> {
        self.tri_counts.clone()
    }

    fn degree(&self, i: usize) -> u32 {
        self.tri_counts[i]
    }

    fn try_for_each_container<F: FnMut(&[usize]) -> std::ops::ControlFlow<()>>(
        &self,
        i: usize,
        mut f: F,
    ) -> std::ops::ControlFlow<()> {
        let v = i as VertexId;
        let nv = self.graph.neighbors(v);
        for &u in nv {
            // Third vertices w with w > u so each triangle {v,u,w} fires once.
            let nu = self.graph.neighbors(u);
            let (mut a, mut b) = (0usize, 0usize);
            while a < nv.len() && b < nu.len() {
                match nv[a].cmp(&nu[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        let w = nv[a];
                        if w > u {
                            f(&[u as usize, w as usize])?;
                        }
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
        std::ops::ControlFlow::Continue(())
    }

    fn r(&self) -> usize {
        1
    }

    fn s(&self) -> usize {
        3
    }

    fn vertices_of(&self, i: usize, out: &mut Vec<VertexId>) {
        out.push(i as VertexId);
    }

    fn name(&self) -> String {
        "(1,3) triangle-core".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::LocalConfig;
    use crate::peel::peel;
    use crate::snd::snd;
    use crate::space::GenericSpace;
    use hdsd_graph::graph_from_edges;

    fn complete(n: u32) -> CsrGraph {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        graph_from_edges(edges)
    }

    #[test]
    fn degrees_count_vertex_triangles() {
        let g = complete(5);
        let sp = Vertex13Space::new(&g);
        // each vertex of K5 is in binom(4,2) = 6 triangles
        assert_eq!(sp.initial_degrees(), vec![6; 5]);
    }

    #[test]
    fn containers_fire_once_per_triangle() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let sp = Vertex13Space::new(&g);
        let mut count = 0;
        sp.for_each_container(2, |others| {
            assert_eq!(others.len(), 2);
            count += 1;
        });
        assert_eq!(count, 2, "vertex 2 sits in both triangles of the bowtie");
        assert_eq!(sp.degree(2), 2);
    }

    #[test]
    fn matches_generic_13_everywhere() {
        for seed in [1u64, 4, 9] {
            let g = hdsd_datasets::erdos_renyi_gnm(40, 140, seed);
            let spec = Vertex13Space::new(&g);
            let gen = GenericSpace::new(&g, 1, 3);
            assert_eq!(spec.initial_degrees(), gen.initial_degrees());
            assert_eq!(peel(&spec).kappa, peel(&gen).kappa, "seed {seed}");
        }
    }

    #[test]
    fn local_algorithms_work_on_13() {
        let g = hdsd_datasets::holme_kim(150, 4, 0.6, 8);
        let sp = Vertex13Space::new(&g);
        let exact = peel(&sp).kappa;
        assert_eq!(snd(&sp, &LocalConfig::default()).tau, exact);
        assert_eq!(
            crate::asynchronous::and(&sp, &LocalConfig::default(), &crate::Order::Natural).tau,
            exact
        );
    }

    #[test]
    fn triangle_free_graph_is_all_zero() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]);
        let sp = Vertex13Space::new(&g);
        assert_eq!(peel(&sp).kappa, vec![0; 4]);
    }
}
