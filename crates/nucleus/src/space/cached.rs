//! An owned, graph-independent snapshot of a clique space.
//!
//! Every other [`CliqueSpace`] implementation borrows the
//! [`CsrGraph`](hdsd_graph::CsrGraph) it
//! was built from, which makes it impossible for a long-lived owner (e.g.
//! the `hdsd-service` engine) to keep a graph *and* its spaces in one
//! struct. [`CachedSpace`] breaks the borrow: it materializes the
//! containers into a [`FlatContainers`] CSR plus the per-clique vertex
//! lists, and serves the full [`CliqueSpace`] interface from those owned
//! arrays. Clique ids are identical to the source space's, so κ vectors,
//! hierarchies and query results computed against either are
//! interchangeable.

use hdsd_graph::VertexId;

use super::{CliqueSpace, FlatContainers, MAX_OTHERS_INLINE};

/// Owned snapshot of a clique space: flat containers + clique vertex lists.
#[derive(Clone, Debug)]
pub struct CachedSpace {
    rs: (usize, usize),
    name: String,
    flat: FlatContainers,
    /// `r` vertex ids per clique, concatenated.
    clique_verts: Vec<VertexId>,
}

impl CachedSpace {
    /// Materializes `space` into an owned snapshot (one full container
    /// walk, like [`FlatContainers::build`], plus one `vertices_of` pass).
    ///
    /// # Panics
    /// Panics when the space's container arity exceeds
    /// [`MAX_OTHERS_INLINE`] (the generic space can; core/truss/nucleus
    /// cannot).
    pub fn build<S: CliqueSpace>(space: &S) -> Self {
        let flat = FlatContainers::build(space);
        assert!(
            flat.group() <= MAX_OTHERS_INLINE,
            "container arity {} exceeds the inline buffer",
            flat.group()
        );
        let r = space.r();
        let n = space.num_cliques();
        let mut clique_verts = Vec::with_capacity(n * r);
        let mut buf = Vec::with_capacity(r);
        for i in 0..n {
            buf.clear();
            space.vertices_of(i, &mut buf);
            debug_assert_eq!(buf.len(), r, "vertices_of arity mismatch at clique {i}");
            clique_verts.extend_from_slice(&buf);
        }
        CachedSpace { rs: (r, space.s()), name: space.name(), flat, clique_verts }
    }

    /// Assembles a snapshot from already-materialized parts: the flat
    /// container arrays plus the concatenated `r`-vertex lists. Used by the
    /// incremental splice path (`crate::delta`), which patches the flat
    /// arrays of an existing snapshot instead of walking a space.
    pub(crate) fn from_parts(
        rs: (usize, usize),
        name: String,
        flat: FlatContainers,
        clique_verts: Vec<VertexId>,
    ) -> Self {
        debug_assert_eq!(clique_verts.len(), flat.num_cliques() * rs.0);
        CachedSpace { rs, name, flat, clique_verts }
    }

    /// The underlying flat container arrays.
    pub fn flat(&self) -> &FlatContainers {
        &self.flat
    }

    /// The `r` vertices of clique `i` as a slice (no allocation).
    pub fn clique_vertices(&self, i: usize) -> &[VertexId] {
        let r = self.rs.0;
        &self.clique_verts[i * r..(i + 1) * r]
    }

    /// Heap bytes held by the snapshot.
    pub fn heap_bytes(&self) -> usize {
        self.flat.heap_bytes() + self.clique_verts.len() * std::mem::size_of::<VertexId>()
    }
}

impl CliqueSpace for CachedSpace {
    fn num_cliques(&self) -> usize {
        self.flat.num_cliques()
    }

    fn initial_degrees(&self) -> Vec<u32> {
        (0..self.flat.num_cliques()).map(|i| self.flat.degree(i)).collect()
    }

    fn degree(&self, i: usize) -> u32 {
        self.flat.degree(i)
    }

    fn try_for_each_container<F: FnMut(&[usize]) -> std::ops::ControlFlow<()>>(
        &self,
        i: usize,
        mut f: F,
    ) -> std::ops::ControlFlow<()> {
        let group = self.flat.group();
        let mut others = [0usize; MAX_OTHERS_INLINE];
        for chunk in self.flat.containers(i).chunks_exact(group.max(1)) {
            for (slot, &o) in others.iter_mut().zip(chunk) {
                *slot = o as usize;
            }
            f(&others[..group])?;
        }
        std::ops::ControlFlow::Continue(())
    }

    fn r(&self) -> usize {
        self.rs.0
    }

    fn s(&self) -> usize {
        self.rs.1
    }

    fn vertices_of(&self, i: usize, out: &mut Vec<VertexId>) {
        out.extend_from_slice(self.clique_vertices(i));
    }

    fn name(&self) -> String {
        self.name.clone()
    }

    /// Already a flat CSR; a second copy would buy nothing.
    fn prefers_flat_cache(&self) -> bool {
        false
    }

    /// The resident container arrays: the exact path peels these directly.
    fn as_flat(&self) -> Option<&FlatContainers> {
        Some(&self.flat)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{CoreSpace, Nucleus34Space, TrussSpace};
    use super::*;
    use crate::peel::peel;
    use hdsd_graph::graph_from_edges;

    fn sample() -> hdsd_graph::CsrGraph {
        graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5),
            (5, 6),
        ])
    }

    fn sorted_containers<S: CliqueSpace>(space: &S, i: usize) -> Vec<Vec<usize>> {
        let mut v: Vec<Vec<usize>> = Vec::new();
        space.for_each_container(i, |o| {
            let mut c = o.to_vec();
            c.sort_unstable();
            v.push(c);
        });
        v.sort();
        v
    }

    fn assert_equivalent<S: CliqueSpace>(space: &S) {
        let cached = CachedSpace::build(space);
        assert_eq!(cached.num_cliques(), space.num_cliques());
        assert_eq!(cached.r(), space.r());
        assert_eq!(cached.s(), space.s());
        assert_eq!(cached.initial_degrees(), space.initial_degrees());
        for i in 0..space.num_cliques() {
            assert_eq!(
                sorted_containers(space, i),
                sorted_containers(&cached, i),
                "containers of clique {i}"
            );
            let mut a = Vec::new();
            let mut b = Vec::new();
            space.vertices_of(i, &mut a);
            cached.vertices_of(i, &mut b);
            assert_eq!(a, b, "vertices of clique {i}");
        }
        // κ computed on the snapshot is bit-identical to the source space.
        assert_eq!(peel(&cached).kappa, peel(space).kappa);
    }

    #[test]
    fn cached_space_is_equivalent_to_source() {
        let g = sample();
        assert_equivalent(&CoreSpace::new(&g));
        assert_equivalent(&TrussSpace::precomputed(&g));
        assert_equivalent(&TrussSpace::on_the_fly(&g));
        assert_equivalent(&Nucleus34Space::precomputed(&g));
        assert_equivalent(&Nucleus34Space::on_the_fly(&g));
    }

    #[test]
    fn cached_space_opts_out_of_double_caching() {
        let g = sample();
        let cached = CachedSpace::build(&TrussSpace::precomputed(&g));
        assert!(!cached.prefers_flat_cache());
        assert!(FlatContainers::build_within(&cached, usize::MAX).is_none());
        assert!(cached.heap_bytes() > 0);
    }
}
