//! Flat (CSR) container cache: one-shot materialization of a space's
//! containers into contiguous arrays.
//!
//! Every [`CliqueSpace`] serves containers through a callback walk; for the
//! on-the-fly spaces that walk re-runs adjacency intersections on *every*
//! call, and even the precomputed spaces chase per-triangle indirections.
//! Iterative sweeps (Snd/And) revisit each r-clique many times, so the
//! repeated walks dominate. [`FlatContainers`] pays the walk **once**,
//! packing every container's other-member ids into a CSR layout
//! (`offsets` + `others`); hot sweeps then read straight runs of
//! contiguous `u32`s through the fused ρ-min + h-index kernels of
//! `hdsd-hindex`.
//!
//! The trade is memory: `Σ d_S(R) · (binom(s,r) − 1)` ids. The sweep
//! drivers therefore gate the cache behind a byte budget
//! ([`FlatContainers::build_within`]) and a per-space hint
//! ([`CliqueSpace::prefers_flat_cache`]) — the (1,2) core space, for
//! example, is *already* a CSR adjacency and would gain nothing from a
//! copy.

use std::sync::OnceLock;

use super::CliqueSpace;

/// CSR snapshot of a clique space's containers.
///
/// Container `c` of r-clique `i` occupies
/// `others[(offsets[i] + c) * group .. (offsets[i] + c + 1) * group]`, where
/// `group = binom(s, r) − 1` is the per-container other-member count (1 for
/// cores, 2 for trusses, 3 for the (3,4) nucleus).
#[derive(Debug)]
pub struct FlatContainers {
    group: usize,
    /// Per-clique container-count prefix sums (container units, length n+1).
    offsets: Vec<usize>,
    /// Packed other-member ids, `group` per container.
    others: Vec<u32>,
    /// Lazily derived canonical container ids (see
    /// [`FlatContainers::container_keys`]); never cloned warm across
    /// `splice`, which builds a fresh struct — ids are row-positional and
    /// would be stale after any row motion.
    keys: OnceLock<Vec<u32>>,
}

impl Clone for FlatContainers {
    fn clone(&self) -> Self {
        FlatContainers {
            group: self.group,
            offsets: self.offsets.clone(),
            others: self.others.clone(),
            keys: match self.keys.get() {
                Some(k) => OnceLock::from(k.clone()),
                None => OnceLock::new(),
            },
        }
    }
}

impl FlatContainers {
    /// Materializes the cache with one full container walk over `space`.
    pub fn build<S: CliqueSpace>(space: &S) -> Self {
        let n = space.num_cliques();
        let group = others_per_container(space);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut total = 0usize;
        for i in 0..n {
            total += space.degree(i) as usize;
            offsets.push(total);
        }
        let mut others = vec![0u32; total * group];
        for i in 0..n {
            let mut at = offsets[i] * group;
            space.for_each_container(i, |members| {
                debug_assert_eq!(members.len(), group, "container arity mismatch at clique {i}");
                for &o in members {
                    others[at] = o as u32;
                    at += 1;
                }
            });
            // Hard assert (release builds too): a space whose `degree()`
            // disagrees with its container walk would otherwise silently
            // pack garbage into neighboring cliques' slots, and every
            // sweep over the cache would return wrong κ values.
            assert_eq!(at, offsets[i + 1] * group, "degree() disagrees with container walk at {i}");
        }
        FlatContainers { group, offsets, others, keys: OnceLock::new() }
    }

    /// Builds the cache only when its estimated footprint fits `budget`
    /// bytes **and** the space says a cache would help.
    pub fn build_within<S: CliqueSpace>(space: &S, budget: usize) -> Option<Self> {
        if !space.prefers_flat_cache() {
            return None;
        }
        if Self::estimate_bytes(space) > budget {
            return None;
        }
        Some(Self::build(space))
    }

    /// Estimated heap bytes of the cache for `space`, computable without
    /// building it (one degree scan, no container walks).
    pub fn estimate_bytes<S: CliqueSpace>(space: &S) -> usize {
        let n = space.num_cliques();
        let group = others_per_container(space);
        let total: usize = (0..n).map(|i| space.degree(i) as usize).sum();
        total * group * std::mem::size_of::<u32>() + (n + 1) * std::mem::size_of::<usize>()
    }

    /// Actual heap bytes held by this cache.
    pub fn heap_bytes(&self) -> usize {
        self.others.len() * std::mem::size_of::<u32>()
            + self.offsets.len() * std::mem::size_of::<usize>()
    }

    /// Number of r-cliques.
    #[inline]
    pub fn num_cliques(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Other-member ids per container (`binom(s, r) − 1`).
    #[inline]
    pub fn group(&self) -> usize {
        self.group
    }

    /// Container count (S-degree) of r-clique `i`.
    #[inline]
    pub fn degree(&self, i: usize) -> u32 {
        (self.offsets[i + 1] - self.offsets[i]) as u32
    }

    /// The packed other-member ids of all of `i`'s containers: a slice of
    /// length `degree(i) * group`, consecutive `group`-chunks being
    /// containers. This is the input shape of
    /// [`hdsd_hindex::HBuffer::fused_rho_h`].
    #[inline]
    pub fn containers(&self, i: usize) -> &[u32] {
        &self.others[self.offsets[i] * self.group..self.offsets[i + 1] * self.group]
    }

    /// Splices this cache into the container cache of an updated space,
    /// reusing every untouched row instead of re-enumerating containers.
    ///
    /// * `new_n` — r-clique count of the updated space;
    /// * `new_to_old[i]` — the old id of new clique `i`, `u32::MAX` when
    ///   the clique was created by the update;
    /// * `member_remap[o]` — the new id of old member id `o` (`u32::MAX`
    ///   when that clique is gone; kept rows must never reference one —
    ///   a container that lost a member is a changed container and its
    ///   surviving members' rows must be marked `touched`);
    /// * `touched[i]` — new ids whose container set changed; their rows
    ///   (and those of created cliques) are re-derived through
    ///   `rebuild_row`, which appends whole containers (`group` members
    ///   per container) for the given new clique id.
    ///
    /// Kept rows cost one copy-and-remap pass; only the perturbed rows go
    /// back through enumeration.
    pub fn splice<F: FnMut(usize, &mut Vec<u32>)>(
        &self,
        new_n: usize,
        new_to_old: &[u32],
        member_remap: &[u32],
        touched: &[bool],
        mut rebuild_row: F,
    ) -> FlatContainers {
        assert_eq!(new_to_old.len(), new_n);
        assert_eq!(touched.len(), new_n);
        let group = self.group.max(1);

        // Re-derive the perturbed rows once, up front, so offsets can be
        // laid out in a single pass.
        let mut patch_data: Vec<u32> = Vec::new();
        let mut patch_row: Vec<(u32, u32)> = Vec::new(); // (start unit, units) per patched row
        let mut offsets = Vec::with_capacity(new_n + 1);
        offsets.push(0usize);
        let mut total = 0usize;
        for i in 0..new_n {
            let old = new_to_old[i];
            let units = if old != u32::MAX && !touched[i] {
                self.degree(old as usize) as usize
            } else {
                let start = patch_data.len();
                rebuild_row(i, &mut patch_data);
                debug_assert_eq!((patch_data.len() - start) % group, 0);
                let units = (patch_data.len() - start) / group;
                patch_row.push(((start / group) as u32, units as u32));
                units
            };
            total += units;
            offsets.push(total);
        }

        let mut others = vec![0u32; total * self.group];
        let mut patched = patch_row.iter();
        for i in 0..new_n {
            let dst = &mut others[offsets[i] * self.group..offsets[i + 1] * self.group];
            let old = new_to_old[i];
            if old != u32::MAX && !touched[i] {
                for (slot, &o) in dst.iter_mut().zip(self.containers(old as usize)) {
                    let mapped = member_remap[o as usize];
                    debug_assert_ne!(mapped, u32::MAX, "kept row {i} references a removed member");
                    *slot = mapped;
                }
            } else {
                let &(start, units) = patched.next().expect("patched row accounted for");
                let src = start as usize * group;
                dst.copy_from_slice(&patch_data[src..src + units as usize * group]);
            }
        }
        FlatContainers { group: self.group, offsets, others, keys: OnceLock::new() }
    }

    /// Unit-index range of r-clique `i`'s containers (unit = one container
    /// slot; multiply by `group` for the `others` element range).
    #[inline]
    pub fn container_units(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// Total container units across all rows (`Σ d_S`). Each physical
    /// container contributes `group + 1` units — one per member row.
    #[inline]
    pub fn num_container_units(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Canonical container ids, one per unit, lazily derived and cached.
    ///
    /// Every physical s-clique container appears once in each member's row
    /// (`group + 1` units total); `container_keys()[u]` maps unit `u` to
    /// the unit index of the *same* container in its **minimum member's**
    /// row. All `group + 1` aliases of a container therefore agree on one
    /// key, giving the barrier-free parallel peel a dense identity to CAS
    /// on for exactly-once container kills — the `CliqueSpace` walk API
    /// never exposes container ids, so they are reconstructed here from
    /// the row geometry alone.
    pub fn container_keys(&self) -> &[u32] {
        self.keys.get_or_init(|| self.compute_keys())
    }

    fn compute_keys(&self) -> Vec<u32> {
        let n = self.num_cliques();
        let group = self.group.max(1);
        let total = self.num_container_units();
        assert!(total < u32::MAX as usize, "container unit space exceeds u32 keys");
        let mut keys = vec![u32::MAX; total];
        let mut target: Vec<u32> = Vec::with_capacity(group);
        let mut cand: Vec<u32> = Vec::with_capacity(group);
        for i in 0..n {
            let iu = i as u32;
            let base = self.offsets[i];
            for (c, chunk) in self.containers(i).chunks_exact(group).enumerate() {
                let unit = base + c;
                let m = chunk.iter().copied().min().unwrap_or(iu).min(iu);
                if m == iu {
                    // `i` is the minimum member: this unit is the canon.
                    keys[unit] = unit as u32;
                    continue;
                }
                // The canonical alias lives in m's row: the container whose
                // member set is (chunk \ {m}) ∪ {i}. Distinct s-cliques have
                // distinct member sets, so the first match is the match.
                target.clear();
                target.extend(chunk.iter().copied().filter(|&o| o != m));
                target.push(iu);
                target.sort_unstable();
                let mbase = self.offsets[m as usize];
                let mut found = u32::MAX;
                for (mc, mchunk) in self.containers(m as usize).chunks_exact(group).enumerate() {
                    cand.clear();
                    cand.extend_from_slice(mchunk);
                    cand.sort_unstable();
                    if cand == target {
                        found = (mbase + mc) as u32;
                        break;
                    }
                }
                assert_ne!(found, u32::MAX, "container of {i} missing from min member {m}'s row");
                keys[unit] = found;
            }
        }
        keys
    }
}

/// `binom(s, r) − 1`: the number of *other* r-cliques in each s-clique of
/// the space.
pub fn others_per_container<S: CliqueSpace + ?Sized>(space: &S) -> usize {
    binom(space.s(), space.r()) - 1
}

fn binom(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut out = 1usize;
    for i in 0..k {
        out = out * (n - i) / (i + 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::{CoreSpace, Nucleus34Space, TrussSpace, Vertex13Space};
    use super::*;
    use hdsd_graph::graph_from_edges;

    fn two_k4s() -> hdsd_graph::CsrGraph {
        graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5),
            (5, 6),
        ])
    }

    fn assert_matches_walk<S: CliqueSpace>(space: &S) {
        let flat = FlatContainers::build(space);
        let group = others_per_container(space);
        assert_eq!(flat.group(), group);
        assert_eq!(flat.num_cliques(), space.num_cliques());
        for i in 0..space.num_cliques() {
            assert_eq!(flat.degree(i), space.degree(i), "degree of {i}");
            let mut walked: Vec<Vec<u32>> = Vec::new();
            space.for_each_container(i, |o| {
                let mut c: Vec<u32> = o.iter().map(|&x| x as u32).collect();
                c.sort_unstable();
                walked.push(c);
            });
            walked.sort();
            let mut cached: Vec<Vec<u32>> = flat
                .containers(i)
                .chunks_exact(group.max(1))
                .map(|c| {
                    let mut v = c.to_vec();
                    v.sort_unstable();
                    v
                })
                .collect();
            cached.sort();
            assert_eq!(cached, walked, "containers of {i} in {}", space.name());
        }
        assert_eq!(flat.heap_bytes(), FlatContainers::estimate_bytes(space));
    }

    #[test]
    fn flat_cache_matches_walk_on_all_spaces() {
        let g = two_k4s();
        assert_matches_walk(&CoreSpace::new(&g));
        assert_matches_walk(&TrussSpace::precomputed(&g));
        assert_matches_walk(&TrussSpace::on_the_fly(&g));
        assert_matches_walk(&Nucleus34Space::precomputed(&g));
        assert_matches_walk(&Nucleus34Space::on_the_fly(&g));
        assert_matches_walk(&Vertex13Space::new(&g));
    }

    #[test]
    fn budget_gates_construction() {
        let g = two_k4s();
        let sp = TrussSpace::precomputed(&g);
        let need = FlatContainers::estimate_bytes(&sp);
        assert!(FlatContainers::build_within(&sp, need).is_some());
        assert!(FlatContainers::build_within(&sp, need - 1).is_none());
        // The core space opts out regardless of budget: it is already CSR.
        let core = CoreSpace::new(&g);
        assert!(FlatContainers::build_within(&core, usize::MAX).is_none());
    }

    fn assert_keys_canonical<S: CliqueSpace>(space: &S) {
        let flat = FlatContainers::build(space);
        let group = flat.group().max(1);
        let keys = flat.container_keys();
        assert_eq!(keys.len(), flat.num_container_units());
        // Brute force: identify each unit's physical container by its full
        // member set (owner row + others) and demand that key equality is
        // exactly member-set equality.
        use std::collections::HashMap;
        let mut by_set: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
        for i in 0..flat.num_cliques() {
            for (c, chunk) in flat.containers(i).chunks_exact(group).enumerate() {
                let unit = flat.container_units(i).start + c;
                let mut set: Vec<u32> = chunk.to_vec();
                set.push(i as u32);
                set.sort_unstable();
                by_set.entry(set).or_default().push(unit);
            }
        }
        for (set, units) in &by_set {
            assert_eq!(units.len(), group + 1, "container {set:?} must have group+1 aliases");
            let canon = keys[units[0]];
            assert!(
                units.iter().all(|&u| keys[u] == canon),
                "aliases of {set:?} disagree on the canonical key"
            );
            assert!(
                units.contains(&(canon as usize)),
                "canonical key of {set:?} must be one of its own aliases"
            );
        }
        // Distinct containers get distinct keys.
        let mut all: Vec<u32> = by_set.values().map(|u| keys[u[0]]).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), by_set.len());
    }

    #[test]
    fn container_keys_are_canonical_on_all_spaces() {
        let g = two_k4s();
        assert_keys_canonical(&CoreSpace::new(&g));
        assert_keys_canonical(&TrussSpace::precomputed(&g));
        assert_keys_canonical(&Nucleus34Space::precomputed(&g));
        assert_keys_canonical(&Vertex13Space::new(&g));
    }

    #[test]
    fn container_keys_survive_clone_but_not_splice() {
        let g = two_k4s();
        let sp = TrussSpace::precomputed(&g);
        let flat = FlatContainers::build(&sp);
        let keys: Vec<u32> = flat.container_keys().to_vec();
        let cloned = flat.clone();
        assert_eq!(cloned.container_keys(), &keys[..]);
    }

    #[test]
    fn group_arity_by_space() {
        let g = two_k4s();
        assert_eq!(others_per_container(&CoreSpace::new(&g)), 1);
        assert_eq!(others_per_container(&TrussSpace::precomputed(&g)), 2);
        assert_eq!(others_per_container(&Nucleus34Space::precomputed(&g)), 3);
        assert_eq!(others_per_container(&Vertex13Space::new(&g)), 2);
    }
}
