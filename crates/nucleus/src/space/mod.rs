//! The `(r, s)` clique-space abstraction.
//!
//! A [`CliqueSpace`] presents a graph as the paper's hypergraph-like view:
//! a universe of **r-cliques** (the objects that receive κ indices) and, for
//! each r-clique, its **containers** — the s-cliques it participates in,
//! each exposed as the list of the *other* r-cliques inside that s-clique.
//! Peeling, Snd and And are generic over this trait, so one implementation
//! of each algorithm serves k-core (1,2), k-truss (2,3), the (3,4) nucleus
//! and the generic small-graph fallback.
//!
//! The paper's ρ computation maps directly onto this interface:
//! `ρ(S, R) = min_{R' ⊂ S, R' ≠ R} τ(R')` is the minimum of `τ` over the
//! `others` slice passed to the container callback, and
//! `Uτ(R) = H({ρ(S, R)})` aggregates one ρ per container.

pub mod core12;
pub mod generic;
pub mod nucleus34;
pub mod truss23;
pub mod vertex13;

pub use core12::CoreSpace;
pub use generic::GenericSpace;
pub use nucleus34::Nucleus34Space;
pub use truss23::TrussSpace;
pub use vertex13::Vertex13Space;

use hdsd_graph::VertexId;

/// Maximum `binom(s, r) - 1` supported by the fixed-size container buffer.
/// (1,2) → 1, (2,3) → 2, (3,4) → 3; the generic space may exceed this and
/// uses its own storage.
pub const MAX_OTHERS_INLINE: usize = 3;

/// A universe of r-cliques and their s-clique containers.
///
/// Implementations must be `Sync`: the parallel algorithms call
/// [`CliqueSpace::for_each_container`] concurrently from many threads with
/// distinct `i`.
pub trait CliqueSpace: Sync {
    /// Number of r-cliques (κ indices to compute).
    fn num_cliques(&self) -> usize;

    /// Initial S-degrees: `d_s(R)` for every r-clique, i.e. τ₀.
    fn initial_degrees(&self) -> Vec<u32>;

    /// S-degree of a single r-clique.
    fn degree(&self, i: usize) -> u32;

    /// Calls `f` once per s-clique containing r-clique `i`, passing the ids
    /// of the *other* r-cliques in that s-clique (length `binom(s,r) − 1`).
    /// Stops early when `f` returns [`std::ops::ControlFlow::Break`] — this
    /// is what makes the paper's §4.4 "preserve τ" early exit possible.
    fn try_for_each_container<F: FnMut(&[usize]) -> std::ops::ControlFlow<()>>(
        &self,
        i: usize,
        f: F,
    ) -> std::ops::ControlFlow<()>;

    /// Calls `f` once per s-clique containing r-clique `i` (no early exit).
    fn for_each_container<F: FnMut(&[usize])>(&self, i: usize, mut f: F) {
        let _ = self.try_for_each_container(i, |others| {
            f(others);
            std::ops::ControlFlow::Continue(())
        });
    }

    /// Calls `f` for every r-clique sharing at least one s-clique with `i`.
    /// May repeat ids; callers needing distinct neighbors must dedupe.
    fn for_each_neighbor<F: FnMut(usize)>(&self, i: usize, mut f: F) {
        self.for_each_container(i, |others| {
            for &o in others {
                f(o);
            }
        });
    }

    /// The `r` of this decomposition (1 = vertices, 2 = edges, 3 = triangles).
    fn r(&self) -> usize;

    /// The `s` of this decomposition (2 = edges, 3 = triangles, 4 = K4s).
    fn s(&self) -> usize;

    /// Appends the vertices of r-clique `i` to `out` (used when
    /// materializing nuclei as vertex sets).
    fn vertices_of(&self, i: usize, out: &mut Vec<VertexId>);

    /// Short human-readable name for reports, e.g. `"(2,3) k-truss"`.
    fn name(&self) -> String {
        format!("({},{}) nucleus", self.r(), self.s())
    }
}

/// Computes `ρ(S, R)` for one container: the minimum τ among the other
/// r-cliques of the s-clique. Defined here so every algorithm shares the
/// exact same semantics.
#[inline]
pub fn rho(tau: &[u32], others: &[usize]) -> u32 {
    debug_assert!(!others.is_empty());
    let mut m = u32::MAX;
    for &o in others {
        m = m.min(tau[o]);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsd_graph::graph_from_edges;

    #[test]
    fn rho_takes_minimum() {
        let tau = [5u32, 3, 9];
        assert_eq!(rho(&tau, &[0, 1, 2]), 3);
        assert_eq!(rho(&tau, &[2]), 9);
    }

    #[test]
    fn default_neighbor_iteration_flattens_containers() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 0)]);
        let sp = CoreSpace::new(&g);
        let mut seen = Vec::new();
        sp.for_each_neighbor(0, |o| seen.push(o));
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
    }
}
