//! The `(r, s)` clique-space abstraction.
//!
//! A [`CliqueSpace`] presents a graph as the paper's hypergraph-like view:
//! a universe of **r-cliques** (the objects that receive κ indices) and, for
//! each r-clique, its **containers** — the s-cliques it participates in,
//! each exposed as the list of the *other* r-cliques inside that s-clique.
//! Peeling, Snd and And are generic over this trait, so one implementation
//! of each algorithm serves k-core (1,2), k-truss (2,3), the (3,4) nucleus
//! and the generic small-graph fallback.
//!
//! The paper's ρ computation maps directly onto this interface:
//! `ρ(S, R) = min_{R' ⊂ S, R' ≠ R} τ(R')` is the minimum of `τ` over the
//! `others` slice passed to the container callback, and
//! `Uτ(R) = H({ρ(S, R)})` aggregates one ρ per container.

pub mod cached;
pub mod core12;
pub mod flat;
pub mod generic;
pub mod nucleus34;
pub mod truss23;
pub mod vertex13;

pub use cached::CachedSpace;
pub use core12::CoreSpace;
pub use flat::{others_per_container, FlatContainers};
pub use generic::GenericSpace;
pub use nucleus34::Nucleus34Space;
pub use truss23::TrussSpace;
pub use vertex13::Vertex13Space;

use hdsd_graph::VertexId;
use hdsd_hindex::HBuffer;

/// Maximum `binom(s, r) - 1` supported by the fixed-size container buffer.
/// (1,2) → 1, (2,3) → 2, (3,4) → 3; the generic space may exceed this and
/// uses its own storage.
pub const MAX_OTHERS_INLINE: usize = 3;

/// A universe of r-cliques and their s-clique containers.
///
/// Implementations must be `Sync`: the parallel algorithms call
/// [`CliqueSpace::for_each_container`] concurrently from many threads with
/// distinct `i`.
pub trait CliqueSpace: Sync {
    /// Number of r-cliques (κ indices to compute).
    fn num_cliques(&self) -> usize;

    /// Initial S-degrees: `d_s(R)` for every r-clique, i.e. τ₀.
    fn initial_degrees(&self) -> Vec<u32>;

    /// S-degree of a single r-clique.
    fn degree(&self, i: usize) -> u32;

    /// Calls `f` once per s-clique containing r-clique `i`, passing the ids
    /// of the *other* r-cliques in that s-clique (length `binom(s,r) − 1`).
    /// Stops early when `f` returns [`std::ops::ControlFlow::Break`] — this
    /// is what makes the paper's §4.4 "preserve τ" early exit possible.
    fn try_for_each_container<F: FnMut(&[usize]) -> std::ops::ControlFlow<()>>(
        &self,
        i: usize,
        f: F,
    ) -> std::ops::ControlFlow<()>;

    /// Calls `f` once per s-clique containing r-clique `i` (no early exit).
    fn for_each_container<F: FnMut(&[usize])>(&self, i: usize, mut f: F) {
        let _ = self.try_for_each_container(i, |others| {
            f(others);
            std::ops::ControlFlow::Continue(())
        });
    }

    /// Calls `f` for every r-clique sharing at least one s-clique with `i`.
    /// May repeat ids; callers needing distinct neighbors must dedupe.
    fn for_each_neighbor<F: FnMut(usize)>(&self, i: usize, mut f: F) {
        self.for_each_container(i, |others| {
            for &o in others {
                f(o);
            }
        });
    }

    /// The `r` of this decomposition (1 = vertices, 2 = edges, 3 = triangles).
    fn r(&self) -> usize;

    /// The `s` of this decomposition (2 = edges, 3 = triangles, 4 = K4s).
    fn s(&self) -> usize;

    /// Appends the vertices of r-clique `i` to `out` (used when
    /// materializing nuclei as vertex sets).
    fn vertices_of(&self, i: usize, out: &mut Vec<VertexId>);

    /// Short human-readable name for reports, e.g. `"(2,3) k-truss"`.
    fn name(&self) -> String {
        format!("({},{}) nucleus", self.r(), self.s())
    }

    /// Whether materializing a [`FlatContainers`] cache is expected to speed
    /// up iterative sweeps over this space. Defaults to `true`; spaces whose
    /// native layout already *is* a flat CSR (the (1,2) core space, the
    /// generic space) override this to `false` so the sweep drivers skip a
    /// pointless copy.
    fn prefers_flat_cache(&self) -> bool {
        true
    }

    /// The space's resident [`FlatContainers`], when its containers are
    /// *already* materialized in that layout ([`CachedSpace`] overrides
    /// this). Lets the exact path ([`crate::peel::peel`]) run its
    /// monomorphized flat engine directly instead of re-walking the rows
    /// through the callback interface — and without building a second copy
    /// of arrays that already exist.
    fn as_flat(&self) -> Option<&FlatContainers> {
        None
    }
}

/// Uniform access layer for the hot sweep loops: the same Snd/And kernels
/// run against either a [`CliqueSpace`] callback walk ([`WalkAccess`]) or a
/// materialized [`FlatContainers`] cache ([`FlatAccess`]). Monomorphized —
/// no dynamic dispatch on the per-container path.
pub(crate) trait SweepAccess: Sync {
    /// Number of r-cliques.
    fn len(&self) -> usize;

    /// Initial τ values (the S-degrees).
    fn initial(&self) -> Vec<u32>;

    /// Recomputes `H({ρ(S, R_i)})` for r-clique `i` against the τ values
    /// served by `read`, with the §4.4 preserve-τ shortcut against `old`
    /// when `preserve` is set. Returns the raw h-index (callers clamp).
    fn recompute<F: Fn(usize) -> u32>(
        &self,
        i: usize,
        old: u32,
        read: F,
        buf: &mut HBuffer,
        preserve: bool,
    ) -> u32;

    /// Calls `f` for every r-clique sharing a container with `i` (the wake
    /// set of the notification mechanism). May repeat ids.
    fn wake<F: FnMut(usize)>(&self, i: usize, f: F);
}

/// [`SweepAccess`] over the space's own container walk.
pub(crate) struct WalkAccess<'a, S: CliqueSpace>(pub &'a S);

impl<S: CliqueSpace> SweepAccess for WalkAccess<'_, S> {
    #[inline]
    fn len(&self) -> usize {
        self.0.num_cliques()
    }

    fn initial(&self) -> Vec<u32> {
        self.0.initial_degrees()
    }

    fn recompute<F: Fn(usize) -> u32>(
        &self,
        i: usize,
        old: u32,
        read: F,
        buf: &mut HBuffer,
        preserve: bool,
    ) -> u32 {
        if old == 0 {
            return 0;
        }
        let rho_of = |others: &[usize]| -> u32 {
            let mut m = u32::MAX;
            for &o in others {
                m = m.min(read(o));
            }
            m
        };
        if preserve {
            // §4.4: at least `old` containers with ρ ≥ old ⇒ H stays `old`.
            let mut qualifying = 0u32;
            let preserved = self
                .0
                .try_for_each_container(i, |others| {
                    if rho_of(others) >= old {
                        qualifying += 1;
                        if qualifying >= old {
                            return std::ops::ControlFlow::Break(());
                        }
                    }
                    std::ops::ControlFlow::Continue(())
                })
                .is_break();
            if preserved {
                return old;
            }
        }
        let deg = self.0.degree(i) as usize;
        let mut session = buf.session(deg);
        self.0.for_each_container(i, |others| session.push(rho_of(others)));
        session.finish()
    }

    #[inline]
    fn wake<F: FnMut(usize)>(&self, i: usize, f: F) {
        self.0.for_each_neighbor(i, f);
    }
}

/// [`SweepAccess`] over a materialized flat cache, using the fused
/// ρ-min + h-index kernels of `hdsd-hindex`.
pub(crate) struct FlatAccess<'a>(pub &'a FlatContainers);

impl SweepAccess for FlatAccess<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.0.num_cliques()
    }

    fn initial(&self) -> Vec<u32> {
        (0..self.0.num_cliques()).map(|i| self.0.degree(i)).collect()
    }

    fn recompute<F: Fn(usize) -> u32>(
        &self,
        i: usize,
        old: u32,
        read: F,
        buf: &mut HBuffer,
        preserve: bool,
    ) -> u32 {
        if old == 0 {
            return 0;
        }
        let others = self.0.containers(i);
        let group = self.0.group();
        let tau_of = |o: u32| read(o as usize);
        if preserve && hdsd_hindex::fused_rho_preserves(others, group, old, tau_of) {
            return old;
        }
        buf.fused_rho_h(others, group, tau_of)
    }

    #[inline]
    fn wake<F: FnMut(usize)>(&self, i: usize, mut f: F) {
        for &o in self.0.containers(i) {
            f(o as usize);
        }
    }
}

/// Computes `ρ(S, R)` for one container: the minimum τ among the other
/// r-cliques of the s-clique. Defined here so every algorithm shares the
/// exact same semantics.
#[inline]
pub fn rho(tau: &[u32], others: &[usize]) -> u32 {
    debug_assert!(!others.is_empty());
    let mut m = u32::MAX;
    for &o in others {
        m = m.min(tau[o]);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsd_graph::graph_from_edges;

    #[test]
    fn rho_takes_minimum() {
        let tau = [5u32, 3, 9];
        assert_eq!(rho(&tau, &[0, 1, 2]), 3);
        assert_eq!(rho(&tau, &[2]), 9);
    }

    #[test]
    fn default_neighbor_iteration_flattens_containers() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 0)]);
        let sp = CoreSpace::new(&g);
        let mut seen = Vec::new();
        sp.for_each_neighbor(0, |o| seen.push(o));
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2]);
    }
}
