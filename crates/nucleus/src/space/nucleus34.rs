//! The (3,4) space: the nucleus decomposition the paper highlights as the
//! sweet spot for dense hierarchy quality.
//!
//! r-cliques are triangles, s-cliques are 4-cliques. As with the truss
//! space, both a precomputed and an on-the-fly strategy exist: the K4 list
//! can be an order of magnitude bigger than the triangle list, which is why
//! the paper's implementation derives participations on the fly.

use std::borrow::Cow;

use hdsd_graph::{CsrGraph, K4List, TriangleList, VertexId};

use super::CliqueSpace;

enum Strategy {
    Precomputed(K4List),
    OnTheFly { k4_counts: Vec<u32> },
}

/// (3,4)-nucleus view of a graph.
pub struct Nucleus34Space<'g> {
    graph: &'g CsrGraph,
    /// Owned or borrowed triangle universe (the long-lived engines keep
    /// one resident list across updates and lend it to every rebuilt
    /// space).
    triangles: Cow<'g, TriangleList>,
    strategy: Strategy,
}

impl<'g> Nucleus34Space<'g> {
    /// Materializes triangle and K4 lists (fast containers, high memory).
    pub fn precomputed(graph: &'g CsrGraph) -> Self {
        let triangles = TriangleList::build(graph);
        let k4 = K4List::build(graph, &triangles);
        Nucleus34Space {
            graph,
            triangles: Cow::Owned(triangles),
            strategy: Strategy::Precomputed(k4),
        }
    }

    /// Materializes only the triangle list; K4 containers are re-derived per
    /// call by intersecting adjacency lists (the paper's approach).
    pub fn on_the_fly(graph: &'g CsrGraph) -> Self {
        let triangles = TriangleList::build(graph);
        Self::from_triangles(graph, triangles)
    }

    /// On-the-fly strategy over an already-built owned triangle list.
    pub fn from_triangles(graph: &'g CsrGraph, triangles: TriangleList) -> Self {
        let k4_counts = hdsd_graph::count_k4_per_triangle(graph, &triangles);
        Nucleus34Space {
            graph,
            triangles: Cow::Owned(triangles),
            strategy: Strategy::OnTheFly { k4_counts },
        }
    }

    /// On-the-fly strategy borrowing a resident triangle list.
    pub fn with_triangles(graph: &'g CsrGraph, triangles: &'g TriangleList) -> Self {
        let k4_counts = hdsd_graph::count_k4_per_triangle(graph, triangles);
        Nucleus34Space {
            graph,
            triangles: Cow::Borrowed(triangles),
            strategy: Strategy::OnTheFly { k4_counts },
        }
    }

    /// The triangle universe of this space.
    pub fn triangles(&self) -> &TriangleList {
        &self.triangles
    }

    /// Consumes the space, returning the triangle list (the id universe of
    /// the κ values computed on this space). Clones when the list was
    /// borrowed.
    pub fn into_triangles(self) -> TriangleList {
        self.triangles.into_owned()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }
}

impl CliqueSpace for Nucleus34Space<'_> {
    fn num_cliques(&self) -> usize {
        self.triangles().len()
    }

    fn initial_degrees(&self) -> Vec<u32> {
        match &self.strategy {
            Strategy::Precomputed(k4) => {
                (0..self.triangles().len() as u32).map(|t| k4.triangle_k4_count(t)).collect()
            }
            Strategy::OnTheFly { k4_counts } => k4_counts.clone(),
        }
    }

    fn degree(&self, i: usize) -> u32 {
        match &self.strategy {
            Strategy::Precomputed(k4) => k4.triangle_k4_count(i as u32),
            Strategy::OnTheFly { k4_counts } => k4_counts[i],
        }
    }

    fn try_for_each_container<F: FnMut(&[usize]) -> std::ops::ControlFlow<()>>(
        &self,
        i: usize,
        mut f: F,
    ) -> std::ops::ControlFlow<()> {
        match &self.strategy {
            Strategy::Precomputed(k4) => {
                for &q in k4.k4s_of_triangle(i as u32) {
                    let tris = k4.quad_tris[q as usize];
                    let mut others = [0usize; 3];
                    let mut n = 0;
                    for &t in &tris {
                        if t as usize != i {
                            others[n] = t as usize;
                            n += 1;
                        }
                    }
                    debug_assert_eq!(n, 3);
                    f(&others)?;
                }
                std::ops::ControlFlow::Continue(())
            }
            Strategy::OnTheFly { .. } => hdsd_graph::try_for_each_k4_of_triangle(
                self.graph,
                self.triangles(),
                i,
                |[x, y, z]| f(&[x as usize, y as usize, z as usize]),
            ),
        }
    }

    fn r(&self) -> usize {
        3
    }

    fn s(&self) -> usize {
        4
    }

    fn vertices_of(&self, i: usize, out: &mut Vec<VertexId>) {
        out.extend_from_slice(&self.triangles().tri_verts[i]);
    }

    fn name(&self) -> String {
        "(3,4) nucleus".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsd_graph::graph_from_edges;

    fn complete(n: u32) -> CsrGraph {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        graph_from_edges(edges)
    }

    #[test]
    fn strategies_agree_on_degrees() {
        let g = complete(6);
        let pre = Nucleus34Space::precomputed(&g);
        let fly = Nucleus34Space::on_the_fly(&g);
        assert_eq!(pre.initial_degrees(), fly.initial_degrees());
        // K6: each triangle extends with any of the 3 remaining vertices.
        assert!(pre.initial_degrees().iter().all(|&d| d == 3));
    }

    #[test]
    fn strategies_agree_on_containers() {
        let g = complete(6);
        let pre = Nucleus34Space::precomputed(&g);
        let fly = Nucleus34Space::on_the_fly(&g);
        for t in 0..pre.num_cliques() {
            let collect = |sp: &Nucleus34Space| {
                let mut v: Vec<Vec<usize>> = Vec::new();
                sp.for_each_container(t, |o| {
                    let mut trio = o.to_vec();
                    trio.sort_unstable();
                    v.push(trio);
                });
                v.sort();
                v
            };
            assert_eq!(collect(&pre), collect(&fly), "triangle {t}");
        }
    }

    #[test]
    fn k4_free_graph_has_zero_degrees() {
        // Bowtie: two triangles sharing a vertex, no K4.
        let g = graph_from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let sp = Nucleus34Space::on_the_fly(&g);
        assert_eq!(sp.num_cliques(), 2);
        assert_eq!(sp.initial_degrees(), vec![0, 0]);
    }

    #[test]
    fn container_members_belong_to_one_k4() {
        let g = complete(5);
        let sp = Nucleus34Space::precomputed(&g);
        for t in 0..sp.num_cliques() {
            sp.for_each_container(t, |others| {
                // t + others = 4 triangles of one K4: union of vertices = 4.
                let mut verts = Vec::new();
                sp.vertices_of(t, &mut verts);
                for &o in others {
                    sp.vertices_of(o, &mut verts);
                }
                verts.sort_unstable();
                verts.dedup();
                assert_eq!(verts.len(), 4);
            });
        }
    }

    #[test]
    fn vertices_of_matches_triangle_list() {
        let g = complete(4);
        let sp = Nucleus34Space::precomputed(&g);
        let mut out = Vec::new();
        sp.vertices_of(0, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out, sp.triangles().tri_verts[0].to_vec());
    }
}
