//! The (1,2) space: k-core decomposition.
//!
//! r-cliques are vertices, s-cliques are edges. Each edge containing vertex
//! `v` has exactly one other member — the neighbor — so ρ degenerates to
//! the neighbor's τ and the update operator is precisely Lu et al.'s
//! iterated h-index on vertex degrees, which the paper generalizes.

use hdsd_graph::{CsrGraph, VertexId};

use super::CliqueSpace;

/// k-core view of a graph.
#[derive(Clone, Copy, Debug)]
pub struct CoreSpace<'g> {
    graph: &'g CsrGraph,
}

impl<'g> CoreSpace<'g> {
    /// Wraps a graph; no precomputation needed.
    pub fn new(graph: &'g CsrGraph) -> Self {
        CoreSpace { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }
}

impl CliqueSpace for CoreSpace<'_> {
    fn num_cliques(&self) -> usize {
        self.graph.num_vertices()
    }

    fn initial_degrees(&self) -> Vec<u32> {
        (0..self.graph.num_vertices() as VertexId).map(|v| self.graph.degree(v) as u32).collect()
    }

    fn degree(&self, i: usize) -> u32 {
        self.graph.degree(i as VertexId) as u32
    }

    fn try_for_each_container<F: FnMut(&[usize]) -> std::ops::ControlFlow<()>>(
        &self,
        i: usize,
        mut f: F,
    ) -> std::ops::ControlFlow<()> {
        for &w in self.graph.neighbors(i as VertexId) {
            f(&[w as usize])?;
        }
        std::ops::ControlFlow::Continue(())
    }

    fn for_each_neighbor<F: FnMut(usize)>(&self, i: usize, mut f: F) {
        for &w in self.graph.neighbors(i as VertexId) {
            f(w as usize);
        }
    }

    fn r(&self) -> usize {
        1
    }

    fn s(&self) -> usize {
        2
    }

    fn vertices_of(&self, i: usize, out: &mut Vec<VertexId>) {
        out.push(i as VertexId);
    }

    fn name(&self) -> String {
        "(1,2) k-core".to_string()
    }

    fn prefers_flat_cache(&self) -> bool {
        false // containers are the CSR neighbor lists; a cache is a copy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsd_graph::graph_from_edges;

    #[test]
    fn degrees_and_containers() {
        let g = graph_from_edges([(0, 1), (0, 2), (1, 2), (2, 3)]);
        let sp = CoreSpace::new(&g);
        assert_eq!(sp.num_cliques(), 4);
        assert_eq!(sp.initial_degrees(), vec![2, 2, 3, 1]);
        assert_eq!(sp.degree(2), 3);
        let mut containers = Vec::new();
        sp.for_each_container(2, |o| containers.push(o.to_vec()));
        assert_eq!(containers, vec![vec![0], vec![1], vec![3]]);
        assert_eq!((sp.r(), sp.s()), (1, 2));
    }

    #[test]
    fn vertices_of_is_identity() {
        let g = graph_from_edges([(0, 1)]);
        let sp = CoreSpace::new(&g);
        let mut out = Vec::new();
        sp.vertices_of(1, &mut out);
        assert_eq!(out, vec![1]);
    }
}
