//! The (2,3) space: k-truss decomposition.
//!
//! r-cliques are edges, s-cliques are triangles. Two strategies are
//! provided, mirroring the paper's discussion of not materializing the
//! hypergraph (§5):
//!
//! * [`TrussSpace::precomputed`] materializes the triangle list once and
//!   serves containers from flat arrays — fastest per iteration, costs
//!   `O(|△|)` memory.
//! * [`TrussSpace::on_the_fly`] stores nothing: containers are re-derived
//!   per call by intersecting the endpoint adjacency lists, exactly the
//!   "find participations of r-cliques in s-cliques on-the-fly" approach
//!   the paper uses for large graphs.
//!
//! Both expose identical semantics (cross-checked by tests and used by the
//! memory/time ablation bench).

use std::borrow::Cow;

use hdsd_graph::{CsrGraph, EdgeId, TriangleList, VertexId};

use super::CliqueSpace;

enum Strategy<'g> {
    /// Owned or borrowed triangle list (the long-lived engines keep one
    /// resident across updates and lend it to every rebuilt space).
    Precomputed(Cow<'g, TriangleList>),
    OnTheFly {
        tri_counts: Vec<u32>,
    },
}

/// k-truss view of a graph.
pub struct TrussSpace<'g> {
    graph: &'g CsrGraph,
    strategy: Strategy<'g>,
}

impl<'g> TrussSpace<'g> {
    /// Materializes the triangle list (fast containers, `O(|△|)` memory).
    pub fn precomputed(graph: &'g CsrGraph) -> Self {
        Self::from_triangles(graph, TriangleList::build(graph))
    }

    /// Reuses an already-built triangle list.
    pub fn from_triangles(graph: &'g CsrGraph, triangles: TriangleList) -> Self {
        TrussSpace { graph, strategy: Strategy::Precomputed(Cow::Owned(triangles)) }
    }

    /// Borrows a resident triangle list instead of building or owning one.
    pub fn with_triangles(graph: &'g CsrGraph, triangles: &'g TriangleList) -> Self {
        TrussSpace { graph, strategy: Strategy::Precomputed(Cow::Borrowed(triangles)) }
    }

    /// Stores only per-edge triangle counts; containers are recomputed by
    /// adjacency intersection on every call.
    pub fn on_the_fly(graph: &'g CsrGraph) -> Self {
        TrussSpace {
            graph,
            strategy: Strategy::OnTheFly {
                tri_counts: hdsd_graph::count_triangles_per_edge(graph),
            },
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// The materialized triangle list, when this space has one.
    pub fn triangles(&self) -> Option<&TriangleList> {
        match &self.strategy {
            Strategy::Precomputed(tl) => Some(tl),
            Strategy::OnTheFly { .. } => None,
        }
    }

    /// Intersects the neighbor lists of `u` and `v`, yielding for every
    /// common neighbor `w` the edge ids of `(u,w)` and `(v,w)`.
    fn intersect_edges<F: FnMut(EdgeId, EdgeId) -> std::ops::ControlFlow<()>>(
        &self,
        u: VertexId,
        v: VertexId,
        mut f: F,
    ) -> std::ops::ControlFlow<()> {
        let (nu, eu) = (self.graph.neighbors(u), self.graph.neighbor_edge_ids(u));
        let (nv, ev) = (self.graph.neighbors(v), self.graph.neighbor_edge_ids(v));
        let (mut a, mut b) = (0usize, 0usize);
        while a < nu.len() && b < nv.len() {
            match nu[a].cmp(&nv[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    f(eu[a], ev[b])?;
                    a += 1;
                    b += 1;
                }
            }
        }
        std::ops::ControlFlow::Continue(())
    }
}

impl CliqueSpace for TrussSpace<'_> {
    fn num_cliques(&self) -> usize {
        self.graph.num_edges()
    }

    fn initial_degrees(&self) -> Vec<u32> {
        match &self.strategy {
            Strategy::Precomputed(tl) => {
                (0..self.graph.num_edges() as EdgeId).map(|e| tl.edge_triangle_count(e)).collect()
            }
            Strategy::OnTheFly { tri_counts } => tri_counts.clone(),
        }
    }

    fn degree(&self, i: usize) -> u32 {
        match &self.strategy {
            Strategy::Precomputed(tl) => tl.edge_triangle_count(i as EdgeId),
            Strategy::OnTheFly { tri_counts } => tri_counts[i],
        }
    }

    fn try_for_each_container<F: FnMut(&[usize]) -> std::ops::ControlFlow<()>>(
        &self,
        i: usize,
        mut f: F,
    ) -> std::ops::ControlFlow<()> {
        match &self.strategy {
            Strategy::Precomputed(tl) => {
                for pair in tl.partner_edges(i as EdgeId) {
                    f(&[pair[0] as usize, pair[1] as usize])?;
                }
                std::ops::ControlFlow::Continue(())
            }
            Strategy::OnTheFly { .. } => {
                let (u, v) = self.graph.edge_endpoints(i as EdgeId);
                self.intersect_edges(u, v, |e1, e2| f(&[e1 as usize, e2 as usize]))
            }
        }
    }

    fn r(&self) -> usize {
        2
    }

    fn s(&self) -> usize {
        3
    }

    fn vertices_of(&self, i: usize, out: &mut Vec<VertexId>) {
        let (u, v) = self.graph.edge_endpoints(i as EdgeId);
        out.push(u);
        out.push(v);
    }

    fn name(&self) -> String {
        "(2,3) k-truss".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsd_graph::graph_from_edges;

    fn k4() -> CsrGraph {
        graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn strategies_agree_on_degrees() {
        let g = k4();
        let pre = TrussSpace::precomputed(&g);
        let fly = TrussSpace::on_the_fly(&g);
        assert_eq!(pre.initial_degrees(), fly.initial_degrees());
        assert_eq!(pre.initial_degrees(), vec![2; 6]);
    }

    #[test]
    fn strategies_agree_on_containers() {
        let g = k4();
        let pre = TrussSpace::precomputed(&g);
        let fly = TrussSpace::on_the_fly(&g);
        for e in 0..g.num_edges() {
            let collect = |sp: &TrussSpace| {
                let mut v: Vec<Vec<usize>> = Vec::new();
                sp.for_each_container(e, |o| {
                    let mut pair = o.to_vec();
                    pair.sort_unstable();
                    v.push(pair);
                });
                v.sort();
                v
            };
            assert_eq!(collect(&pre), collect(&fly), "edge {e}");
        }
    }

    #[test]
    fn container_members_form_triangles() {
        let g = k4();
        let sp = TrussSpace::precomputed(&g);
        for e in 0..g.num_edges() {
            sp.for_each_container(e, |others| {
                // The three edges must pairwise share vertices (a triangle).
                let es = [e, others[0], others[1]];
                let mut verts = Vec::new();
                for &x in &es {
                    let (a, b) = g.edge_endpoints(x as EdgeId);
                    verts.push(a);
                    verts.push(b);
                }
                verts.sort_unstable();
                verts.dedup();
                assert_eq!(verts.len(), 3, "container of edge {e} is not a triangle");
            });
        }
    }

    #[test]
    fn triangle_free_graph_has_empty_containers() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 3)]);
        for sp in [TrussSpace::precomputed(&g), TrussSpace::on_the_fly(&g)] {
            assert_eq!(sp.initial_degrees(), vec![0, 0, 0]);
            let mut called = false;
            sp.for_each_container(0, |_| called = true);
            assert!(!called);
        }
    }

    #[test]
    fn vertices_of_returns_endpoints() {
        let g = k4();
        let sp = TrussSpace::on_the_fly(&g);
        let mut out = Vec::new();
        sp.vertices_of(0, &mut out);
        assert_eq!(out, vec![0, 1]);
    }
}
