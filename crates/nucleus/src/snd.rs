//! Snd — Synchronous Nucleus Decomposition (the paper's Algorithm 2).
//!
//! Jacobi-style iteration: every r-clique recomputes its τ from the
//! *previous* iteration's values (`τ_{t+1} = Uτ_t`), so the result is
//! deterministic and independent of processing order. All r-cliques can be
//! processed in parallel within an iteration; the only cross-iteration
//! state is the double-buffered τ array.
//!
//! By Theorem 1 the sequence is non-increasing and lower-bounded by κ, and
//! by Theorem 3 it converges within `max degree level` iterations; both
//! facts are asserted (debug) and tested.

use hdsd_hindex::HBuffer;
use hdsd_parallel::{parallel_for_chunks_with, AtomicU32Vec, SchedulerStats};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::convergence::{ConvergenceResult, IterationEvent, LocalConfig};
use crate::space::{CliqueSpace, FlatAccess, FlatContainers, SweepAccess, WalkAccess};

/// Runs Snd to convergence (or the configured iteration cap).
pub fn snd<S: CliqueSpace>(space: &S, cfg: &LocalConfig) -> ConvergenceResult {
    snd_with_observer(space, cfg, &mut |_| {})
}

/// Runs Snd, invoking `observer` after every iteration with the fresh τ
/// values — the hook behind the convergence-rate and plateau experiments.
///
/// Like And, the sweep body runs against the flat container cache when
/// [`LocalConfig::container_cache_budget`] admits it (Snd revisits every
/// r-clique every iteration, so it benefits even more from the contiguous
/// layout); the cache never changes results, only memory traffic.
pub fn snd_with_observer<S: CliqueSpace>(
    space: &S,
    cfg: &LocalConfig,
    observer: &mut dyn FnMut(IterationEvent<'_>),
) -> ConvergenceResult {
    let flat =
        cfg.container_cache_budget.and_then(|budget| FlatContainers::build_within(space, budget));
    match &flat {
        Some(f) => snd_driver(&FlatAccess(f), cfg, observer),
        None => snd_driver(&WalkAccess(space), cfg, observer),
    }
}

fn snd_driver<A: SweepAccess>(
    access: &A,
    cfg: &LocalConfig,
    observer: &mut dyn FnMut(IterationEvent<'_>),
) -> ConvergenceResult {
    let n = access.len();
    let tau = AtomicU32Vec::from_vec(access.initial());
    let mut tau_prev = vec![0u32; n];
    let mut tau_snapshot = vec![0u32; n];

    let mut scheduler = SchedulerStats::default();
    let mut updates_per_iter = Vec::new();
    let mut processed_per_iter = Vec::new();
    let mut converged = false;
    let mut sweeps = 0usize;

    loop {
        if n == 0 {
            converged = true;
            break;
        }
        tau.copy_to_slice(&mut tau_prev);
        let updates = AtomicUsize::new(0);
        let tau_prev_ref: &[u32] = &tau_prev;
        let tau_ref = &tau;
        let updates_ref = &updates;

        let sweep_stats = parallel_for_chunks_with(n, cfg.parallel, HBuffer::new, |buf, range| {
            let mut local_updates = 0usize;
            for i in range {
                let old = tau_prev_ref[i];
                let new = access.recompute(i, old, |o| tau_prev_ref[o], buf, cfg.preserve_check);
                debug_assert!(new <= old, "monotonicity violated at {i}: {old} -> {new}");
                if new != old {
                    tau_ref.set(i, new);
                    local_updates += 1;
                }
            }
            if local_updates > 0 {
                updates_ref.fetch_add(local_updates, Ordering::Relaxed);
            }
        });

        scheduler.merge(&sweep_stats);
        scheduler.items_processed += n as u64;
        sweeps += 1;
        let u = updates.load(Ordering::Relaxed);
        updates_per_iter.push(u);
        processed_per_iter.push(n);
        tau.copy_to_slice(&mut tau_snapshot);
        observer(IterationEvent {
            iteration: sweeps,
            tau: &tau_snapshot,
            updates: u,
            processed: n,
        });

        if u == 0 {
            converged = true;
            break;
        }
        if cfg.stable_enough(u, n) {
            break; // stability stopping rule: good enough, not exact
        }
        if let Some(cap) = cfg.max_iterations {
            if sweeps >= cap {
                break;
            }
        }
    }

    ConvergenceResult {
        tau: tau.into_vec(),
        sweeps,
        converged,
        updates_per_iter,
        processed_per_iter,
        scheduler,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::peel;
    use crate::space::{CoreSpace, GenericSpace, Nucleus34Space, TrussSpace};
    use hdsd_graph::graph_from_edges;

    /// The paper's Figure 2 toy graph for the k-core walkthrough:
    /// vertices a..f = 0..5; edges such that degrees are
    /// a:2, b:3, c:2, d:2, e:2, f:1 and κ₂ = [1,2,2,2,1,1].
    fn paper_fig2_graph() -> hdsd_graph::CsrGraph {
        // a-e, a-b, b-c, b-d, c-d, e-f  (a=0,b=1,c=2,d=3,e=4,f=5)
        graph_from_edges([(0, 4), (0, 1), (1, 2), (1, 3), (2, 3), (4, 5)])
    }

    #[test]
    fn paper_fig2_core_walkthrough() {
        // The paper traces Snd on this graph: τ0 = degrees, τ1 from
        // h-indices, τ2 = κ; convergence detected on the third sweep.
        let g = paper_fig2_graph();
        let sp = CoreSpace::new(&g);
        let mut snapshots: Vec<Vec<u32>> = Vec::new();
        let r = snd_with_observer(&sp, &LocalConfig::sequential(), &mut |ev| {
            snapshots.push(ev.tau.to_vec())
        });
        // τ0 (degrees): a=2, b=3, c=2, d=2, e=2, f=1
        assert_eq!(sp.initial_degrees(), vec![2, 3, 2, 2, 2, 1]);
        // τ1: a = H({τ0(e),τ0(b)}) = H({2,3}) = 2; b = H({2,2,2}) = 2;
        //     e = H({2,1}) = 1 ...
        assert_eq!(snapshots[0], vec![2, 2, 2, 2, 1, 1]);
        // τ2: a = H({τ1(e),τ1(b)}) = H({1,2}) = 1; rest unchanged.
        assert_eq!(snapshots[1], vec![1, 2, 2, 2, 1, 1]);
        // Exact core numbers, matching the peeling ground truth.
        assert_eq!(r.tau, peel(&sp).kappa);
        assert_eq!(r.iterations_to_converge(), 2);
        assert_eq!(r.sweeps, 3); // two updating sweeps + certification sweep
        assert!(r.converged);
    }

    #[test]
    fn snd_equals_peeling_on_truss_and_nucleus() {
        let g = graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3), // K4
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5), // second K4 via (2,3)
            (4, 6),
            (4, 7),
            (5, 7), // fringe
        ]);
        let truss = TrussSpace::precomputed(&g);
        assert_eq!(snd(&truss, &LocalConfig::sequential()).tau, peel(&truss).kappa);
        let nuc = Nucleus34Space::precomputed(&g);
        assert_eq!(snd(&nuc, &LocalConfig::sequential()).tau, peel(&nuc).kappa);
        let gen = GenericSpace::new(&g, 1, 3);
        assert_eq!(snd(&gen, &LocalConfig::sequential()).tau, peel(&gen).kappa);
    }

    #[test]
    fn snd_parallel_matches_sequential() {
        let g = hdsd_datasets::erdos_renyi_gnm(200, 900, 3);
        let sp = CoreSpace::new(&g);
        let seq = snd(&sp, &LocalConfig::sequential());
        for threads in [2, 4] {
            let par = snd(&sp, &LocalConfig::with_threads(threads));
            assert_eq!(par.tau, seq.tau);
            // Snd is deterministic: same iteration count too.
            assert_eq!(par.sweeps, seq.sweeps);
        }
    }

    #[test]
    fn preserve_check_does_not_change_results() {
        let g = hdsd_datasets::holme_kim(300, 4, 0.5, 9);
        let sp = TrussSpace::precomputed(&g);
        let with = snd(&sp, &LocalConfig::sequential());
        let without = snd(&sp, &LocalConfig::sequential().without_preserve_check());
        assert_eq!(with.tau, without.tau);
        assert_eq!(with.sweeps, without.sweeps);
    }

    #[test]
    fn capped_iterations_give_monotone_upper_bounds() {
        let g = hdsd_datasets::erdos_renyi_gnm(150, 700, 5);
        let sp = CoreSpace::new(&g);
        let exact = peel(&sp).kappa;
        let mut prev: Option<Vec<u32>> = None;
        for t in 1..=4 {
            let r = snd(&sp, &LocalConfig::sequential().max_iterations(t));
            // Theorem 1: τ_t >= κ everywhere and τ monotone non-increasing.
            for (i, (&a, &k)) in r.tau.iter().zip(&exact).enumerate() {
                assert!(a >= k, "τ_{t}[{i}] = {a} < κ = {k}");
                if let Some(p) = &prev {
                    assert!(a <= p[i], "τ not monotone at {i}");
                }
            }
            prev = Some(r.tau);
        }
    }

    #[test]
    fn empty_and_trivial_graphs() {
        let g = graph_from_edges([]);
        let sp = CoreSpace::new(&g);
        let r = snd(&sp, &LocalConfig::sequential());
        assert!(r.tau.is_empty());
        assert!(r.converged);

        let g1 = graph_from_edges([(0, 1)]);
        let sp1 = CoreSpace::new(&g1);
        let r1 = snd(&sp1, &LocalConfig::sequential());
        assert_eq!(r1.tau, vec![1, 1]);
    }

    #[test]
    fn stability_rule_stops_early_with_valid_bounds() {
        let g = hdsd_datasets::thin_edges(&hdsd_datasets::holme_kim(600, 8, 0.5, 5), 0.7, 5);
        let sp = CoreSpace::new(&g);
        let full = snd(&sp, &LocalConfig::sequential());
        let early = snd(&sp, &LocalConfig::sequential().stop_when_stable(0.98));
        assert!(!early.converged);
        assert!(early.sweeps < full.sweeps, "{} !< {}", early.sweeps, full.sweeps);
        // Theorem 1: still a valid upper bound everywhere.
        for (a, k) in early.tau.iter().zip(&full.tau) {
            assert!(a >= k);
        }
        // threshold 1.0 behaves like run-to-convergence
        let exact = snd(&sp, &LocalConfig::sequential().stop_when_stable(1.0));
        assert!(exact.converged);
        assert_eq!(exact.tau, full.tau);
    }

    #[test]
    fn observer_sees_every_iteration() {
        let g = hdsd_datasets::erdos_renyi_gnm(80, 300, 1);
        let sp = CoreSpace::new(&g);
        let mut iters = Vec::new();
        let r = snd_with_observer(&sp, &LocalConfig::sequential(), &mut |ev| {
            iters.push((ev.iteration, ev.updates, ev.processed));
        });
        assert_eq!(iters.len(), r.sweeps);
        assert_eq!(iters.last().unwrap().1, 0, "last sweep certifies convergence");
        assert!(iters.iter().enumerate().all(|(k, &(it, _, _))| it == k + 1));
    }
}
