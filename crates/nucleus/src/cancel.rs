//! Cooperative cancellation for long-running kernels.
//!
//! A [`CancelToken`] bundles every reason a computation may be asked to
//! stop early — a wall-clock deadline, an external flag (client
//! disconnect, load shedding), or a deterministic test trip — behind one
//! cheap [`CancelToken::check`] call that kernels invoke at their natural
//! chunk boundaries:
//!
//! - the sequential peel checks every [`crate::peel::PEEL_CANCEL_CHUNK`]
//!   items, the parallel drain at every chunk claim;
//! - the And frontier checks once per sweep (sequential) and per worker
//!   pop batch (parallel);
//! - hierarchy materialization checks per union–find threshold batch.
//!
//! The overshoot past a tripped token is therefore bounded by one chunk
//! of the kernel that observes it, which the deadline-semantics tests
//! pin. A token is `Clone` (cheap: two `Option`s and two `Arc`s) so one
//! request-scoped token can be threaded through every stage it touches.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a [`CancelToken`] tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The external flag was raised (disconnect, shed, shutdown).
    Flag,
}

/// A tripped cancellation: the reason plus the stage that observed it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cancelled {
    /// Why the token tripped.
    pub reason: CancelReason,
    /// The kernel stage that observed the trip (e.g. `"peel drain"`).
    pub stage: &'static str,
}

impl Cancelled {
    /// The protocol-facing error string. Deadline trips keep the wire
    /// shape pinned since PR 6 (`deadline exceeded (<stage>)`); flag
    /// trips render distinctly so shed/disconnect aborts are tellable
    /// apart from deadline misses in logs and tests.
    pub fn message(&self) -> String {
        match self.reason {
            CancelReason::Deadline => format!("deadline exceeded ({})", self.stage),
            CancelReason::Flag => format!("request cancelled ({})", self.stage),
        }
    }
}

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message())
    }
}

impl From<Cancelled> for String {
    fn from(c: Cancelled) -> String {
        c.message()
    }
}

/// Request-scoped cancellation token threaded from the protocol layer
/// into the kernels. See the module docs for check-point granularity.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    deadline: Option<Instant>,
    flag: Option<Arc<AtomicBool>>,
    /// Deterministic test hook: trip on the Nth `check` call regardless
    /// of wall clock, so overshoot bounds can be asserted exactly.
    trip_after: Option<Arc<AtomicI64>>,
}

impl CancelToken {
    /// A token that never trips (the default for internal callers).
    pub fn none() -> CancelToken {
        CancelToken::default()
    }

    /// A token tripping once `deadline` passes. `None` never trips.
    pub fn with_deadline(deadline: Option<Instant>) -> CancelToken {
        CancelToken { deadline, ..CancelToken::default() }
    }

    /// A token tripping when `flag` is raised (disconnect / shed).
    pub fn with_flag(flag: Arc<AtomicBool>) -> CancelToken {
        CancelToken { flag: Some(flag), ..CancelToken::default() }
    }

    /// Adds a deadline to this token (keeping the earlier of two).
    pub fn and_deadline(mut self, deadline: Option<Instant>) -> CancelToken {
        self.deadline = match (self.deadline, deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self
    }

    /// Adds an external flag to this token.
    pub fn and_flag(mut self, flag: Arc<AtomicBool>) -> CancelToken {
        self.flag = Some(flag);
        self
    }

    /// Test-only determinism: the token trips on its `n`th `check` call
    /// (1-based), counting across clones — all clones share the counter.
    pub fn tripping_after_checks(n: i64) -> CancelToken {
        CancelToken { trip_after: Some(Arc::new(AtomicI64::new(n))), ..CancelToken::default() }
    }

    /// Whether this token can ever trip. Kernels use this to skip the
    /// per-chunk branch entirely on the common uncancellable path.
    #[inline]
    pub fn is_armed(&self) -> bool {
        self.deadline.is_some() || self.flag.is_some() || self.trip_after.is_some()
    }

    /// Whether the token has tripped, without consuming a test-hook
    /// count (used by workers that only need a cheap load).
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        if let Some(f) = &self.flag {
            if f.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(t) = &self.trip_after {
            if t.load(Ordering::Relaxed) <= 0 {
                return true;
            }
        }
        matches!(self.deadline, Some(d) if Instant::now() >= d)
    }

    /// The cancellation check kernels call at chunk boundaries. `stage`
    /// names the call site for the error message. Flag trips win over
    /// deadline trips (a dead connection needs no deadline excuse).
    #[inline]
    pub fn check(&self, stage: &'static str) -> Result<(), Cancelled> {
        if let Some(f) = &self.flag {
            if f.load(Ordering::Relaxed) {
                return Err(Cancelled { reason: CancelReason::Flag, stage });
            }
        }
        if let Some(t) = &self.trip_after {
            if t.fetch_sub(1, Ordering::Relaxed) <= 1 {
                return Err(Cancelled { reason: CancelReason::Flag, stage });
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(Cancelled { reason: CancelReason::Deadline, stage });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn none_token_never_trips() {
        let t = CancelToken::none();
        assert!(!t.is_armed());
        assert!(!t.is_cancelled());
        for _ in 0..1000 {
            assert!(t.check("anywhere").is_ok());
        }
    }

    #[test]
    fn expired_deadline_trips_with_pinned_message() {
        let t = CancelToken::with_deadline(Some(Instant::now() - Duration::from_millis(1)));
        assert!(t.is_armed() && t.is_cancelled());
        let e = t.check("peel drain").unwrap_err();
        assert_eq!(e.reason, CancelReason::Deadline);
        assert_eq!(e.message(), "deadline exceeded (peel drain)");
        // A generous deadline does not trip.
        let t = CancelToken::with_deadline(Some(Instant::now() + Duration::from_secs(60)));
        assert!(t.check("peel drain").is_ok());
        // No deadline at all never trips.
        assert!(!CancelToken::with_deadline(None).is_armed());
    }

    #[test]
    fn flag_trips_all_clones_and_wins_over_deadline() {
        let flag = Arc::new(AtomicBool::new(false));
        let t = CancelToken::with_flag(Arc::clone(&flag))
            .and_deadline(Some(Instant::now() - Duration::from_millis(1)));
        // Deadline already expired: reason is Deadline until the flag rises.
        assert_eq!(t.check("s").unwrap_err().reason, CancelReason::Deadline);
        flag.store(true, Ordering::Relaxed);
        let clone = t.clone();
        assert_eq!(clone.check("s").unwrap_err().reason, CancelReason::Flag);
        assert_eq!(clone.check("s").unwrap_err().message(), "request cancelled (s)");
    }

    #[test]
    fn and_deadline_keeps_the_earlier() {
        let near = Instant::now() - Duration::from_millis(1);
        let far = Instant::now() + Duration::from_secs(60);
        assert!(CancelToken::with_deadline(Some(far)).and_deadline(Some(near)).check("s").is_err());
        assert!(CancelToken::with_deadline(Some(near)).and_deadline(Some(far)).check("s").is_err());
        assert!(CancelToken::with_deadline(None).and_deadline(Some(far)).check("s").is_ok());
    }

    #[test]
    fn trip_after_counts_checks_deterministically() {
        let t = CancelToken::tripping_after_checks(3);
        assert!(t.check("a").is_ok());
        assert!(t.check("b").is_ok());
        let e = t.check("c").unwrap_err();
        assert_eq!(e.stage, "c");
        // Stays tripped forever after, including via is_cancelled.
        assert!(t.check("d").is_err());
        assert!(t.is_cancelled());
        // Clones share the counter: a clone of a fresh token advances it.
        let t = CancelToken::tripping_after_checks(2);
        let c = t.clone();
        assert!(c.check("x").is_ok());
        assert!(t.check("y").is_err());
    }
}
