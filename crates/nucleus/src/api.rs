//! One-call conveniences for the common decompositions.
//!
//! These wrap the space construction + algorithm choice for users who just
//! want numbers: exact κ via the fastest exact path (peeling), or
//! approximate κ via a bounded number of local iterations.

use hdsd_graph::{CsrGraph, EdgeId, VertexId};

use crate::asynchronous::{and, Order};
use crate::convergence::LocalConfig;
use crate::hierarchy::{build_hierarchy, NucleusDensity};
use crate::peel::peel;
use crate::space::{CliqueSpace, CoreSpace, Nucleus34Space, TrussSpace};

/// Exact core numbers κ₂ of every vertex.
pub fn core_numbers(g: &CsrGraph) -> Vec<u32> {
    peel(&CoreSpace::new(g)).kappa
}

/// Exact truss numbers κ₃ of every edge (indexed by [`EdgeId`]).
pub fn truss_numbers(g: &CsrGraph) -> Vec<u32> {
    peel(&TrussSpace::precomputed(g)).kappa
}

/// Exact (3,4)-nucleus numbers κ₄ of every triangle, returned with the
/// triangle list that defines the ids.
pub fn nucleus34_numbers(g: &CsrGraph) -> (hdsd_graph::TriangleList, Vec<u32>) {
    let space = Nucleus34Space::precomputed(g);
    let kappa = peel(&space).kappa;
    (space.into_triangles(), kappa)
}

/// Approximate core numbers: `t` local iterations (τ_t ≥ κ₂, Theorem 1).
pub fn approx_core_numbers(g: &CsrGraph, iterations: usize) -> Vec<u32> {
    let space = CoreSpace::new(g);
    and(&space, &LocalConfig::default().max_iterations(iterations), &Order::Natural).tau
}

/// Approximate truss numbers: `t` local iterations (τ_t ≥ κ₃).
pub fn approx_truss_numbers(g: &CsrGraph, iterations: usize) -> Vec<u32> {
    let space = TrussSpace::precomputed(g);
    and(&space, &LocalConfig::default().max_iterations(iterations), &Order::Natural).tau
}

/// The densest nucleus of a decomposition with at least `min_vertices`
/// vertices, or `None` when the graph has no s-cliques.
///
/// Density here is the paper's `2|E| / (|V| (|V|−1))` on the nucleus's
/// induced subgraph; the `min_vertices` floor filters out trivial
/// near-clique leaves.
pub fn densest_nucleus<S: CliqueSpace>(
    space: &S,
    g: &CsrGraph,
    min_vertices: usize,
) -> Option<(NucleusDensity, Vec<VertexId>)> {
    let kappa = peel(space).kappa;
    let forest = build_hierarchy(space, &kappa);
    let mut best: Option<(NucleusDensity, u32)> = None;
    for id in 0..forest.len() as u32 {
        let d = forest.node_density(id, space, g);
        if d.vertices >= min_vertices && best.is_none_or(|(b, _)| d.density > b.density) {
            best = Some((d, id));
        }
    }
    best.map(|(d, id)| (d, forest.member_vertices(id, space)))
}

/// The maximum core of a vertex: the maximal connected subgraph around `v`
/// of vertices with κ₂ ≥ κ₂(v) (the paper's "maximum core" notion from §2).
pub fn maximum_core_of(g: &CsrGraph, v: VertexId) -> Vec<VertexId> {
    let kappa = core_numbers(g);
    let k = kappa[v as usize];
    // BFS over vertices with κ >= k.
    let mut visited = vec![false; g.num_vertices()];
    let mut queue = vec![v];
    visited[v as usize] = true;
    let mut members = Vec::new();
    while let Some(u) = queue.pop() {
        members.push(u);
        for &w in g.neighbors(u) {
            if !visited[w as usize] && kappa[w as usize] >= k {
                visited[w as usize] = true;
                queue.push(w);
            }
        }
    }
    members.sort_unstable();
    members
}

/// The maximum truss of an edge: the maximal triangle-connected set of
/// edges with κ₃ ≥ κ₃(e) containing `e`.
pub fn maximum_truss_of(g: &CsrGraph, e: EdgeId) -> Vec<EdgeId> {
    let space = TrussSpace::precomputed(g);
    let kappa = peel(&space).kappa;
    let k = kappa[e as usize];
    let mut visited = vec![false; g.num_edges()];
    let mut queue = vec![e as usize];
    visited[e as usize] = true;
    let mut members = Vec::new();
    while let Some(x) = queue.pop() {
        members.push(x as EdgeId);
        space.for_each_container(x, |others| {
            // Triangle connects its edges only if every edge clears k.
            if others.iter().all(|&o| kappa[o] >= k) {
                for &o in others {
                    if !visited[o] {
                        visited[o] = true;
                        queue.push(o);
                    }
                }
            }
        });
    }
    members.sort_unstable();
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsd_graph::graph_from_edges;

    fn two_k4_bridge() -> CsrGraph {
        graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3), // K4 A
            (4, 5),
            (4, 6),
            (4, 7),
            (5, 6),
            (5, 7),
            (6, 7), // K4 B
            (3, 8),
            (8, 4), // degree-2 connector
        ])
    }

    #[test]
    fn convenience_functions_match_peeling() {
        let g = two_k4_bridge();
        assert_eq!(core_numbers(&g), vec![3, 3, 3, 3, 3, 3, 3, 3, 2]);
        let truss = truss_numbers(&g);
        assert_eq!(truss[g.edge_id(0, 1).unwrap() as usize], 2);
        assert_eq!(truss[g.edge_id(3, 8).unwrap() as usize], 0);
        let (tl, k34) = nucleus34_numbers(&g);
        assert_eq!(tl.len(), 8);
        assert!(k34.iter().all(|&k| k == 1)); // each K4's triangles
    }

    #[test]
    fn approx_upper_bounds_exact() {
        let g = hdsd_datasets::holme_kim(200, 5, 0.5, 3);
        let exact = core_numbers(&g);
        for t in [1usize, 2, 4] {
            let approx = approx_core_numbers(&g, t);
            assert!(approx.iter().zip(&exact).all(|(&a, &k)| a >= k), "t={t}");
        }
        let exact_t = truss_numbers(&g);
        let approx_t = approx_truss_numbers(&g, 2);
        assert!(approx_t.iter().zip(&exact_t).all(|(&a, &k)| a >= k));
    }

    #[test]
    fn densest_nucleus_finds_the_k4() {
        let g = graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3), // K4
            (3, 4),
            (4, 5),
            (5, 6), // tail
        ]);
        let sp = CoreSpace::new(&g);
        let (d, verts) = densest_nucleus(&sp, &g, 4).unwrap();
        assert_eq!(verts, vec![0, 1, 2, 3]);
        assert!((d.density - 1.0).abs() < 1e-12);
    }

    #[test]
    fn densest_nucleus_respects_min_vertices() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 0)]); // triangle only
        let sp = CoreSpace::new(&g);
        assert!(densest_nucleus(&sp, &g, 4).is_none());
        assert!(densest_nucleus(&sp, &g, 3).is_some());
    }

    #[test]
    fn maximum_core_respects_connectivity() {
        let g = two_k4_bridge();
        // Vertex 0 has κ=3; its maximum core is K4 A only (the connector
        // has κ=2, breaking the ≥3 path to K4 B).
        assert_eq!(maximum_core_of(&g, 0), vec![0, 1, 2, 3]);
        // The connector's maximum core (κ=2) spans everything.
        assert_eq!(maximum_core_of(&g, 8).len(), 9);
    }

    #[test]
    fn maximum_truss_stays_within_triangle_connectivity() {
        let g = two_k4_bridge();
        let e01 = g.edge_id(0, 1).unwrap();
        let t = maximum_truss_of(&g, e01);
        // K4 A's six edges form the 2-truss around (0,1).
        assert_eq!(t.len(), 6);
        for e in t {
            let (u, v) = g.edge_endpoints(e);
            assert!(u <= 3 && v <= 3, "edge ({u},{v}) escapes K4 A");
        }
    }
}
