//! The worked examples from the paper's figures, as reusable graphs.
//!
//! These tiny graphs pin the implementation to the paper's own traces: the
//! unit tests walk Snd/And through them step by step, the `repro toys`
//! subcommand prints the traces, and the quickstart example uses one.

use hdsd_graph::{graph_from_edges, CsrGraph};

/// The paper's Figure 2 k-core toy (vertices a..f = 0..5).
///
/// Degrees are `[2, 3, 2, 2, 2, 1]`; Snd converges in two updating
/// iterations to core numbers `[1, 2, 2, 2, 1, 1]`; And in the
/// `{f, e, a, b, c, d}` order (non-decreasing κ) converges in one.
pub fn fig2_core_toy() -> CsrGraph {
    graph_from_edges([(0, 4), (0, 1), (1, 2), (1, 3), (2, 3), (4, 5)])
}

/// Expected core numbers of [`fig2_core_toy`].
pub fn fig2_core_numbers() -> Vec<u32> {
    vec![1, 2, 2, 2, 1, 1]
}

/// The And order the paper highlights for Figure 2 (`{f,e,a,b,c,d}`),
/// which satisfies Theorem 4's non-decreasing-κ condition.
pub fn fig2_kappa_order() -> Vec<u32> {
    vec![5, 4, 0, 1, 2, 3]
}

/// The paper's Figure 3 graph (vertices a..h = 0..7): two K4s sharing the
/// edge (c,d) plus vertex `h` completing a second 4-clique on {c,e,f,h}
/// and a pendant vertex `g` on `e`.
///
/// * As a truss instance (Fig. 3a): the whole graph is a single 1-truss
///   component, all but `g`'s pendant edge form the 2-truss region.
/// * As a (3,4) instance (Fig. 3b): two *separate* 1-(3,4) nuclei —
///   `{a,b,c,d}` and `{c,d,e,f,h}` — because no 4-clique carries a
///   triangle of one into the other.
pub fn fig3_nucleus_toy() -> CsrGraph {
    graph_from_edges([
        (0, 1),
        (0, 2),
        (0, 3),
        (1, 2),
        (1, 3),
        (2, 3), // K4 abcd
        (2, 4),
        (2, 5),
        (3, 4),
        (3, 5),
        (4, 5), // K4 cdef
        (4, 6), // pendant g on e
        (2, 7),
        (4, 7),
        (5, 7), // h adjacent to c,e,f -> K4 cefh
    ])
}

/// The paper's Figure 4 degree-levels toy (a..g = 0..6).
///
/// Levels: `L0 = {a}`, `L1 = {b}`, `L2 = {c, g}`, `L3 = {d, e, f}`.
pub fn fig4_levels_toy() -> CsrGraph {
    graph_from_edges([
        (0, 1),
        (1, 2),
        (1, 6),
        (2, 3),
        (2, 4),
        (2, 5),
        (6, 3),
        (6, 4),
        (6, 5),
        (3, 4),
        (3, 5),
        (4, 5),
    ])
}

/// Expected degree level of each vertex of [`fig4_levels_toy`].
pub fn fig4_levels() -> Vec<u32> {
    vec![0, 1, 2, 3, 3, 3, 2]
}

/// A 9-vertex truss toy in the spirit of the paper's Figure 5 walkthrough:
/// edge (a,b) participates in four triangles (with c, d, e, i) whose ρ
/// values form `L = {4, 3, 3, 2}`, giving `τ₁(ab) = H(L) = 3`.
pub fn fig5_truss_toy() -> CsrGraph {
    // a=0, b=1, c=2, d=3, e=4, f=5, g=6, h=7, i=8.
    // Dense block around {a,b,c,d,e} plus a lighter wing {f,g,h,i}.
    graph_from_edges([
        (0, 1), // ab
        (0, 2),
        (1, 2), // abc
        (0, 3),
        (1, 3), // abd
        (0, 4),
        (1, 4), // abe
        (0, 8),
        (1, 8), // abi
        (2, 3),
        (2, 4),
        (3, 4), // cde clique with a,b
        (2, 8), // ci
        (4, 5),
        (5, 6),
        (4, 6), // efg triangle
        (5, 7),
        (6, 7), // fgh triangle
        (3, 8), // di
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::LocalConfig;
    use crate::levels::degree_levels;
    use crate::peel::peel;
    use crate::snd::snd;
    use crate::space::{CliqueSpace, CoreSpace, TrussSpace};

    #[test]
    fn fig2_matches_expected_cores() {
        let g = fig2_core_toy();
        let sp = CoreSpace::new(&g);
        assert_eq!(peel(&sp).kappa, fig2_core_numbers());
        assert_eq!(snd(&sp, &LocalConfig::sequential()).tau, fig2_core_numbers());
    }

    #[test]
    fn fig4_matches_expected_levels() {
        let g = fig4_levels_toy();
        let sp = CoreSpace::new(&g);
        assert_eq!(degree_levels(&sp).level, fig4_levels());
    }

    #[test]
    fn fig5_first_update_of_ab() {
        let g = fig5_truss_toy();
        let sp = TrussSpace::precomputed(&g);
        let ab = g.edge_id(0, 1).unwrap() as usize;
        // τ0 = triangle counts; edge ab must be in exactly 4 triangles.
        assert_eq!(sp.degree(ab), 4);
        // One synchronous iteration: τ1(ab) = 3 like the paper's trace.
        let r = snd(&sp, &LocalConfig::sequential().max_iterations(1));
        assert_eq!(r.tau[ab], 3);
    }

    #[test]
    fn fig3_truss_side() {
        let g = fig3_nucleus_toy();
        let sp = TrussSpace::precomputed(&g);
        let kappa = peel(&sp).kappa;
        // Pendant edge (e,g) has no triangles: κ3 = 0.
        assert_eq!(kappa[g.edge_id(4, 6).unwrap() as usize], 0);
        // Edges inside the K4s reach κ3 = 2.
        assert_eq!(kappa[g.edge_id(0, 1).unwrap() as usize], 2);
        assert_eq!(kappa[g.edge_id(2, 3).unwrap() as usize], 2);
    }
}
