//! Shared configuration, telemetry and result types for the local
//! (iterative h-index) algorithms.

use hdsd_parallel::{ParallelConfig, SchedulerStats};

/// How And visits awake r-cliques within an iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SweepMode {
    /// Frontier scheduling: an explicit dedup-on-insert worklist of awake
    /// r-cliques; per-iteration cost is `O(frontier)`, not `O(n)`. The
    /// default — this is what makes late, nearly-converged iterations
    /// cheap.
    #[default]
    Frontier,
    /// The paper's literal §4.2.1 formulation: scan the full permutation
    /// every iteration and check a wake flag per r-clique. Recomputes
    /// essentially the same work as `Frontier` (an idle r-clique woken
    /// mid-sweep at a later position is picked up one sweep earlier), but
    /// pays `O(n)` flag checks per sweep; kept as an ablation reference.
    FlagScan,
    /// No notification at all: recompute every r-clique every iteration
    /// (the Figure-8 baseline).
    FullScan,
}

/// Default byte budget for the flat container cache (256 MiB). Sweeps on
/// spaces that prefer the cache materialize it when the estimate fits; see
/// [`crate::space::FlatContainers`].
pub const DEFAULT_CONTAINER_CACHE_BUDGET: usize = 256 << 20;

/// Configuration of a Snd / And run.
#[derive(Clone, Copy, Debug)]
pub struct LocalConfig {
    /// Thread/scheduling configuration.
    pub parallel: ParallelConfig,
    /// Hard iteration cap; `None` runs to convergence. Capped runs are the
    /// paper's approximation mode (τ_t is a valid upper bound on κ at every
    /// t, by Theorem 1).
    pub max_iterations: Option<usize>,
    /// Enable the §4.4 early-exit check ("once we see ≥ τ items with at
    /// least τ index, no more checks needed") before full recomputation.
    pub preserve_check: bool,
    /// Stability-based stopping (the paper's ground-truth-free quality
    /// indicator for runtime/accuracy decisions): stop once the fraction of
    /// r-cliques whose τ changed in a sweep drops to `1 − threshold` — i.e.
    /// stability ≥ threshold. `None` disables the rule.
    pub stability_threshold: Option<f64>,
    /// How And schedules awake r-cliques (ignored by Snd, which is
    /// synchronous by definition). Only consulted when notification is on.
    pub sweep_mode: SweepMode,
    /// Byte budget for the flat container cache; `None` disables caching.
    /// Spaces whose layout is already flat opt out regardless (see
    /// [`crate::space::CliqueSpace::prefers_flat_cache`]).
    pub container_cache_budget: Option<usize>,
}

impl Default for LocalConfig {
    fn default() -> Self {
        LocalConfig {
            parallel: ParallelConfig::sequential(),
            max_iterations: None,
            preserve_check: true,
            stability_threshold: None,
            sweep_mode: SweepMode::Frontier,
            container_cache_budget: Some(DEFAULT_CONTAINER_CACHE_BUDGET),
        }
    }
}

impl LocalConfig {
    /// Sequential, run-to-convergence configuration.
    pub fn sequential() -> Self {
        Self::default()
    }

    /// Parallel configuration with `t` threads.
    pub fn with_threads(t: usize) -> Self {
        LocalConfig { parallel: ParallelConfig::with_threads(t), ..Self::default() }
    }

    /// Caps the number of iterations (approximation mode).
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = Some(n);
        self
    }

    /// Disables the preserve-τ early exit (for ablation).
    pub fn without_preserve_check(mut self) -> Self {
        self.preserve_check = false;
        self
    }

    /// Stops once per-sweep stability (`1 − updates/|R|`) reaches
    /// `threshold` (clamped to `0.0..=1.0`). A threshold of 1.0 is exactly
    /// run-to-convergence; ~0.99 typically buys near-exact rankings at a
    /// fraction of the runtime (see Figure 7 / the `approximate_truss`
    /// example).
    pub fn stop_when_stable(mut self, threshold: f64) -> Self {
        self.stability_threshold = Some(threshold.clamp(0.0, 1.0));
        self
    }

    /// Selects how And schedules awake r-cliques (ablation knob).
    pub fn sweep_mode(mut self, mode: SweepMode) -> Self {
        self.sweep_mode = mode;
        self
    }

    /// Sets the flat-container-cache byte budget.
    pub fn container_cache_budget(mut self, bytes: usize) -> Self {
        self.container_cache_budget = Some(bytes);
        self
    }

    /// Disables the flat container cache (every sweep walks the space's
    /// containers through the callback interface).
    pub fn without_container_cache(mut self) -> Self {
        self.container_cache_budget = None;
        self
    }

    /// Whether a sweep with `updates` changed values out of `n` satisfies
    /// the configured stopping rule.
    pub(crate) fn stable_enough(&self, updates: usize, n: usize) -> bool {
        match self.stability_threshold {
            Some(th) if n > 0 => (1.0 - updates as f64 / n as f64) >= th && updates > 0,
            _ => false,
        }
    }
}

/// Snapshot handed to an observer after each iteration/sweep.
#[derive(Debug)]
pub struct IterationEvent<'a> {
    /// 1-based iteration number.
    pub iteration: usize,
    /// τ values after this iteration.
    pub tau: &'a [u32],
    /// Number of r-cliques whose τ changed in this iteration.
    pub updates: usize,
    /// Number of r-cliques whose τ was recomputed in this iteration
    /// (smaller than the universe when the notification mechanism skips
    /// idle r-cliques).
    pub processed: usize,
}

/// Result of an iterative local decomposition.
#[derive(Clone, Debug)]
pub struct ConvergenceResult {
    /// Final τ values. Equal to the exact κ indices when `converged`.
    pub tau: Vec<u32>,
    /// Total sweeps executed, including the final zero-update sweep that
    /// certifies convergence.
    pub sweeps: usize,
    /// Whether the run reached a fixed point (false only when the
    /// iteration cap stopped it first).
    pub converged: bool,
    /// τ-updates per sweep.
    pub updates_per_iter: Vec<usize>,
    /// r-cliques recomputed per sweep.
    pub processed_per_iter: Vec<usize>,
    /// Scheduler telemetry aggregated over the whole run: chunk handout per
    /// worker plus the processed/skipped item split (frontier scheduling
    /// keeps `items_skipped` at zero by construction; the flag-scan mode
    /// counts every idle flag check it pays for).
    pub scheduler: SchedulerStats,
}

impl ConvergenceResult {
    /// Iterations the paper would report: sweeps that performed at least
    /// one update (the trailing zero-update certification sweep and any
    /// notification-idle sweeps are excluded).
    pub fn iterations_to_converge(&self) -> usize {
        self.updates_per_iter.iter().filter(|&&u| u > 0).count()
    }

    /// Total recomputation work across the run (Σ processed).
    pub fn total_processed(&self) -> u64 {
        self.processed_per_iter.iter().map(|&p| p as u64).sum()
    }

    /// Total updates across the run.
    pub fn total_updates(&self) -> u64 {
        self.updates_per_iter.iter().map(|&u| u as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterations_to_converge_ignores_idle_sweeps() {
        let r = ConvergenceResult {
            tau: vec![],
            sweeps: 4,
            converged: true,
            updates_per_iter: vec![10, 3, 0, 0],
            processed_per_iter: vec![10, 10, 4, 0],
            scheduler: SchedulerStats::default(),
        };
        assert_eq!(r.iterations_to_converge(), 2);
        assert_eq!(r.total_processed(), 24);
        assert_eq!(r.total_updates(), 13);
    }

    #[test]
    fn config_builders() {
        let c = LocalConfig::with_threads(4).max_iterations(7).without_preserve_check();
        assert_eq!(c.parallel.threads, 4);
        assert_eq!(c.max_iterations, Some(7));
        assert!(!c.preserve_check);
        assert!(LocalConfig::default().preserve_check);
    }
}
