//! Incremental clique-space maintenance: splicing a [`CachedSpace`] across
//! an edge batch instead of re-enumerating it.
//!
//! PR 2 made the *decomposition* refresh cheap; what remained expensive was
//! everything underneath it — rebuilding the graph, re-enumerating every
//! triangle and K4, and re-materializing the flat container cache on each
//! update. This module closes that gap using the remaps produced by
//! [`hdsd_graph::delta`]:
//!
//! * the **core** space's containers are the adjacency itself, so its
//!   snapshot is re-materialized from the spliced CSR (one flat copy, no
//!   enumeration anywhere);
//! * the **truss** space reuses the maintained [`TriangleList`]: rows of
//!   edges whose triangle set is untouched are copied with ids remapped,
//!   and only the rows around the batch are re-derived from the new
//!   incidence lists;
//! * the **(3,4)** space re-derives only the rows of triangles whose K4
//!   membership changed ([`hdsd_graph::mark_k4_touched`]); every other row
//!   is copied with triangle ids remapped — no global K4 enumeration.
//!
//! Each function also returns the `new id → old id` clique remap, which is
//! what lets the warm-started refresh carry stale κ across the update
//! **positionally**, with no identity hashing
//! (see [`crate::incremental::refresh_resume_of`]).

use hdsd_graph::{
    try_for_each_k4_of_triangle, CsrDelta, CsrGraph, TriangleDelta, TriangleList, NO_ID,
};

use crate::space::{CachedSpace, CliqueSpace, CoreSpace};

/// A spliced space snapshot plus the clique-id remap into the old space.
pub struct SpaceDelta {
    /// The updated space's owned snapshot (ids match a from-scratch build).
    pub cached: CachedSpace,
    /// New clique id → old clique id ([`NO_ID`] for batch-created cliques).
    pub new_to_old: Vec<u32>,
}

/// The (1,2) core space after the batch. Vertex ids are stable; the
/// snapshot is re-materialized from the already-spliced CSR (a flat copy —
/// the core space's containers *are* the adjacency rows).
pub fn core_space_delta(new_graph: &CsrGraph, old_num_vertices: usize) -> SpaceDelta {
    let cached = CachedSpace::build(&CoreSpace::new(new_graph));
    let n = new_graph.num_vertices();
    let new_to_old =
        (0..n as u32).map(|v| if (v as usize) < old_num_vertices { v } else { NO_ID }).collect();
    SpaceDelta { cached, new_to_old }
}

/// The (2,3) truss space after the batch: untouched rows of the old
/// snapshot are copied with edge ids remapped; rows of edges that gained
/// or lost a triangle are re-read from the maintained incidence lists.
pub fn truss_space_delta(
    old: &CachedSpace,
    old_tl: &TriangleList,
    new_graph: &CsrGraph,
    ed: &CsrDelta,
    td: &TriangleDelta,
) -> SpaceDelta {
    debug_assert_eq!(old.r(), 2);
    let new_m = new_graph.num_edges();
    let new_tl = &td.list;

    // An edge's containers changed iff a triangle through it appeared or
    // disappeared.
    let mut touched = vec![false; new_m];
    for &t in &td.destroyed {
        for &e in &old_tl.tri_edges[t as usize] {
            let ne = ed.old_to_new[e as usize];
            if ne != NO_ID {
                touched[ne as usize] = true;
            }
        }
    }
    for &t in &td.created {
        for &e in &new_tl.tri_edges[t as usize] {
            touched[e as usize] = true;
        }
    }

    let flat = old.flat().splice(new_m, &ed.new_to_old, &ed.old_to_new, &touched, |e, out| {
        for pair in new_tl.partner_edges(e as u32) {
            out.push(pair[0]);
            out.push(pair[1]);
        }
    });

    let mut clique_verts = Vec::with_capacity(new_m * 2);
    for &(u, v) in new_graph.edges() {
        clique_verts.push(u);
        clique_verts.push(v);
    }
    let cached = CachedSpace::from_parts((2, 3), old.name(), flat, clique_verts);
    SpaceDelta { cached, new_to_old: ed.new_to_old.clone() }
}

/// The (3,4) nucleus space after the batch: only rows of triangles whose
/// K4 membership changed go back through the triple-intersection walk;
/// everything else is a copy with triangle ids remapped.
pub fn nucleus34_space_delta(
    old: &CachedSpace,
    old_graph: &CsrGraph,
    old_tl: &TriangleList,
    new_graph: &CsrGraph,
    ed: &CsrDelta,
    td: &TriangleDelta,
) -> SpaceDelta {
    debug_assert_eq!(old.r(), 3);
    let new_tl = &td.list;
    let touched = hdsd_graph::mark_k4_touched(old_graph, old_tl, new_graph, new_tl, ed, td);

    let flat =
        old.flat().splice(new_tl.len(), &td.new_to_old, &td.old_to_new, &touched, |t, out| {
            let _ = try_for_each_k4_of_triangle(new_graph, new_tl, t, |[x, y, z]| {
                out.extend([x, y, z]);
                std::ops::ControlFlow::Continue(())
            });
        });

    let mut clique_verts = Vec::with_capacity(new_tl.len() * 3);
    for vs in &new_tl.tri_verts {
        clique_verts.extend_from_slice(vs);
    }
    let cached = CachedSpace::from_parts((3, 4), old.name(), flat, clique_verts);
    SpaceDelta { cached, new_to_old: td.new_to_old.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{Nucleus34Space, TrussSpace};
    use hdsd_graph::{apply_edge_batch, graph_from_edges, triangle_delta};

    fn two_k4s() -> CsrGraph {
        graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5),
            (5, 6),
        ])
    }

    fn sorted_containers(space: &CachedSpace, i: usize) -> Vec<Vec<usize>> {
        let mut v: Vec<Vec<usize>> = Vec::new();
        space.for_each_container(i, |o| {
            let mut c = o.to_vec();
            c.sort_unstable();
            v.push(c);
        });
        v.sort();
        v
    }

    fn assert_cached_eq(spliced: &CachedSpace, fresh: &CachedSpace) {
        assert_eq!(spliced.num_cliques(), fresh.num_cliques());
        for i in 0..fresh.num_cliques() {
            assert_eq!(spliced.degree(i), fresh.degree(i), "degree of clique {i}");
            assert_eq!(spliced.clique_vertices(i), fresh.clique_vertices(i), "vertices of {i}");
            assert_eq!(sorted_containers(spliced, i), sorted_containers(fresh, i), "row {i}");
        }
    }

    #[test]
    fn spliced_spaces_match_cold_builds() {
        let g = two_k4s();
        let tl = TriangleList::build(&g);
        let old_truss = CachedSpace::build(&TrussSpace::with_triangles(&g, &tl));
        let old_n34 = CachedSpace::build(&Nucleus34Space::with_triangles(&g, &tl));

        let ins = [(1, 4), (0, 6), (4, 6)];
        let rm = [(2, 3), (5, 6)];
        let (g2, ed) = apply_edge_batch(&g, &ins, &rm);
        let td = triangle_delta(&tl, &g2, &ed);

        let truss = truss_space_delta(&old_truss, &tl, &g2, &ed, &td);
        assert_cached_eq(&truss.cached, &CachedSpace::build(&TrussSpace::on_the_fly(&g2)));

        let n34 = nucleus34_space_delta(&old_n34, &g, &tl, &g2, &ed, &td);
        assert_cached_eq(&n34.cached, &CachedSpace::build(&Nucleus34Space::on_the_fly(&g2)));

        let core = core_space_delta(&g2, g.num_vertices());
        assert_cached_eq(&core.cached, &CachedSpace::build(&CoreSpace::new(&g2)));
        assert!(core.new_to_old.iter().all(|&o| o != NO_ID));
    }
}
