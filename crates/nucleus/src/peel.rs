//! The peeling baseline (the paper's Algorithm 1).
//!
//! [`peel`] is the exact, sequential, bucket-queue algorithm — the
//! generalization of Batagelj–Zaveršnik `O(|E|)` k-core peeling to any
//! (r, s) space. It is the ground truth every local algorithm is verified
//! against, and the baseline every benchmark compares with.
//!
//! Two engines serve it:
//!
//! * [`peel_flat`] / [`PeelEngine`] — the **flat engine**: the bucket queue
//!   runs directly over [`FlatContainers`] CSR slices. Degree bins, the
//!   position permutation (`u32`, half the cache traffic of the old
//!   `usize` arrays) and every container row are contiguous; the inner
//!   loop is monomorphized per container arity (`group == 2` — the truss
//!   space — unrolls to a two-others fast path), and dead containers are
//!   skipped by a members-already-peeled check on the flat row with no
//!   closure dispatch anywhere.
//! * [`peel_walk`] — the original container-walk form, kept as the
//!   ablation reference and the fallback for spaces with no cache.
//!
//! [`peel`] dispatches: a space that already owns flat rows
//! ([`CliqueSpace::as_flat`], e.g. the engine-resident
//! [`CachedSpace`](crate::space::CachedSpace)) is peeled flat in place; a
//! space that prefers a cache gets one when it fits the default byte
//! budget (the same [`FlatContainers::build_within`] gate the sweep
//! drivers use); everything else walks.
//!
//! [`peel_parallel`] is the "partially parallel peeling" comparator of the
//! paper's Figure 1b: levels are discovered sequentially (that dependency
//! is inherent to peeling — the paper's core argument), while the
//! decrement work inside a level runs in parallel. It takes the same
//! flat-vs-walk dispatch, advances thresholds with a single fused
//! min-find + collect scan (replacing the old two full `O(|R|)` passes;
//! the `k + 1` min-degree floor carried across thresholds is
//! debug-asserted and licenses the scan's direct threshold advance), and
//! accumulates bucket crossings in per-worker buffers merged after the
//! chunk barrier — no lock on the hot decrement path.

use hdsd_parallel::{parallel_for_chunks_collect, ParallelConfig};
use std::sync::atomic::{AtomicU32, Ordering};

use crate::convergence::DEFAULT_CONTAINER_CACHE_BUDGET;
use crate::space::{CliqueSpace, FlatContainers};

/// Deterministic work counters of one peeling run.
///
/// For the sequential engines these are exact and identical between the
/// walk and flat forms (same algorithm, same visit order) — the CI bench
/// gate pins them as a drift check. The parallel form counts the same
/// events (its totals are deterministic too, but differ from the
/// sequential ones because same-round containers are executed once by
/// their lowest-id member).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeelStats {
    /// s-clique containers visited (Σ d_S over peeled r-cliques).
    pub containers_scanned: u64,
    /// Containers skipped because a member was already peeled.
    pub dead_containers: u64,
    /// Bucket-queue moves (one per successful degree decrement).
    pub bucket_moves: u64,
}

impl PeelStats {
    fn merge(&mut self, other: &PeelStats) {
        self.containers_scanned += other.containers_scanned;
        self.dead_containers += other.dead_containers;
        self.bucket_moves += other.bucket_moves;
    }
}

/// Output of a peeling run.
#[derive(Clone, Debug)]
pub struct PeelResult {
    /// Exact κ index per r-clique.
    pub kappa: Vec<u32>,
    /// r-clique ids in processing (non-decreasing κ) order.
    pub order: Vec<u32>,
    /// Maximum κ.
    pub max_kappa: u32,
    /// Work counters of the run.
    pub stats: PeelStats,
}

impl PeelResult {
    fn empty() -> PeelResult {
        PeelResult {
            kappa: Vec::new(),
            order: Vec::new(),
            max_kappa: 0,
            stats: PeelStats::default(),
        }
    }
}

/// Exact sequential peeling over any clique space (Algorithm 1).
///
/// Dispatches to the fastest engine for the space: a resident flat cache
/// ([`CliqueSpace::as_flat`]) is peeled in place, a space that prefers a
/// cache within [`DEFAULT_CONTAINER_CACHE_BUDGET`] gets one built for the
/// run, and everything else falls back to [`peel_walk`]. All three paths
/// produce bit-identical results (κ, order, max κ — property-tested).
pub fn peel<S: CliqueSpace>(space: &S) -> PeelResult {
    if let Some(flat) = space.as_flat() {
        return peel_flat(flat);
    }
    if let Some(flat) = FlatContainers::build_within(space, DEFAULT_CONTAINER_CACHE_BUDGET) {
        return peel_flat(&flat);
    }
    peel_walk(space)
}

/// Exact sequential peeling over a flat container cache (the hot engine;
/// see [`PeelEngine`] for the reusable-buffer form).
pub fn peel_flat(flat: &FlatContainers) -> PeelResult {
    hdsd_telemetry::span!("peel.flat");
    PeelEngine::new().peel(flat)
}

/// Reusable flat peeling engine: owns the bucket-queue scratch (degree
/// bins, position permutation) so repeated peels — engine startup over
/// several spaces, property harnesses, benches — pay one warm allocation
/// instead of five fresh arrays per run.
///
/// The inner loop is monomorphized per container arity: `group == 1`
/// (core), `2` (truss — the two-others fast path), `3` ((3,4) nucleus),
/// with a dynamic-width fallback for generic spaces.
#[derive(Default)]
pub struct PeelEngine {
    /// Current S-degrees (mutated by peeling).
    deg: Vec<u32>,
    /// First unprocessed position of each degree bucket.
    bucket_start: Vec<usize>,
    /// Position of each r-clique in the processing permutation.
    pos_of: Vec<u32>,
    /// The permutation itself (positions sorted by current degree).
    item_at: Vec<u32>,
    /// Bucket-fill cursor used during initialization.
    cursor: Vec<usize>,
}

impl PeelEngine {
    /// An engine with empty scratch (buffers grow on first use).
    pub fn new() -> PeelEngine {
        PeelEngine::default()
    }

    /// Peels `flat` exactly, reusing this engine's scratch buffers.
    pub fn peel(&mut self, flat: &FlatContainers) -> PeelResult {
        match flat.group() {
            1 => self.run::<1>(flat),
            2 => self.run::<2>(flat),
            3 => self.run::<3>(flat),
            _ => self.run::<0>(flat), // 0 = dynamic width
        }
    }

    /// The bucket-queue peel with the container arity monomorphized
    /// (`G == 0` reads the width at runtime — the generic-space fallback).
    fn run<const G: usize>(&mut self, flat: &FlatContainers) -> PeelResult {
        let n = flat.num_cliques();
        if n == 0 {
            return PeelResult::empty();
        }
        debug_assert!(G == 0 || flat.group() == G, "arity dispatch mismatch");
        let group = if G > 0 { G } else { flat.group().max(1) };
        let mut stats = PeelStats::default();

        // τ₀ straight off the CSR offsets; degree bins by counting sort.
        self.deg.clear();
        self.deg.extend((0..n).map(|i| flat.degree(i)));
        let max_deg = self.deg.iter().copied().max().unwrap_or(0) as usize;
        self.bucket_start.clear();
        self.bucket_start.resize(max_deg + 2, 0);
        for &d in &self.deg {
            self.bucket_start[d as usize + 1] += 1;
        }
        for i in 0..=max_deg {
            self.bucket_start[i + 1] += self.bucket_start[i];
        }
        self.pos_of.clear();
        self.pos_of.resize(n, 0);
        self.item_at.clear();
        self.item_at.resize(n, 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.bucket_start);
        for v in 0..n {
            let p = self.cursor[self.deg[v] as usize];
            self.pos_of[v] = p as u32;
            self.item_at[p] = v as u32;
            self.cursor[self.deg[v] as usize] = p + 1;
        }

        let mut kappa = vec![0u32; n];
        let mut order = Vec::with_capacity(n);
        let mut max_kappa = 0u32;

        for i in 0..n {
            let v = self.item_at[i] as usize;
            let kv = self.deg[v];
            kappa[v] = kv;
            max_kappa = max_kappa.max(kv);
            order.push(v as u32);

            let row = flat.containers(v);
            stats.containers_scanned += (row.len() / group) as u64;
            for c in row.chunks_exact(group) {
                // Dead-container skip on the flat row: positions are
                // processed in order and alive items always sit past the
                // cursor, so `pos ≤ i` ⇔ the member is peeled and the
                // s-clique is gone.
                if c.iter().any(|&o| self.pos_of[o as usize] as usize <= i) {
                    stats.dead_containers += 1;
                    continue;
                }
                for &o in c {
                    let o = o as usize;
                    let d = self.deg[o];
                    if d > kv {
                        // Move o to the front of its bucket, then decrement.
                        let front = self.bucket_start[d as usize].max(i + 1);
                        let po = self.pos_of[o] as usize;
                        if po != front {
                            let other = self.item_at[front];
                            self.item_at[po] = other;
                            self.item_at[front] = o as u32;
                            self.pos_of[other as usize] = po as u32;
                            self.pos_of[o] = front as u32;
                        }
                        self.bucket_start[d as usize] = front + 1;
                        self.deg[o] = d - 1;
                        stats.bucket_moves += 1;
                    }
                }
            }
        }

        PeelResult { kappa, order, max_kappa, stats }
    }
}

/// Exact sequential peeling through the space's container walk — the
/// pre-flat form, kept as the ablation reference (`BENCH_peel.json`'s
/// "walk" rows) and the fallback for spaces with no cache. Bit-identical
/// to [`peel_flat`] on the same space.
pub fn peel_walk<S: CliqueSpace>(space: &S) -> PeelResult {
    hdsd_telemetry::span!("peel.walk");
    let n = space.num_cliques();
    if n == 0 {
        return PeelResult::empty();
    }
    let mut deg = space.initial_degrees();
    let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;
    let mut stats = PeelStats::default();

    // Bucket queue over degree values (positions sorted by current degree).
    let mut bucket_start = vec![0usize; max_deg + 2];
    for &d in &deg {
        bucket_start[d as usize + 1] += 1;
    }
    for i in 0..=max_deg {
        bucket_start[i + 1] += bucket_start[i];
    }
    let mut pos_of = vec![0usize; n];
    let mut item_at = vec![0usize; n];
    {
        let mut cursor = bucket_start.clone();
        for (v, &d) in deg.iter().enumerate() {
            pos_of[v] = cursor[d as usize];
            item_at[cursor[d as usize]] = v;
            cursor[d as usize] += 1;
        }
    }

    let mut processed = vec![false; n];
    let mut kappa = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    let mut max_kappa = 0u32;

    for i in 0..n {
        let v = item_at[i];
        processed[v] = true;
        let kv = deg[v];
        kappa[v] = kv;
        max_kappa = max_kappa.max(kv);
        order.push(v as u32);

        space.for_each_container(v, |others| {
            stats.containers_scanned += 1;
            // Algorithm 1: if any r-clique of this s-clique was already
            // processed, the s-clique is gone; skip.
            if others.iter().any(|&o| processed[o]) {
                stats.dead_containers += 1;
                return;
            }
            for &o in others {
                if deg[o] > kv {
                    // Move o to the front of its bucket, then decrement.
                    let d = deg[o] as usize;
                    let front = bucket_start[d].max(i + 1);
                    let po = pos_of[o];
                    if po != front {
                        let other_item = item_at[front];
                        item_at.swap(po, front);
                        pos_of[other_item] = po;
                        pos_of[o] = front;
                    }
                    bucket_start[d] = front + 1;
                    deg[o] -= 1;
                    stats.bucket_moves += 1;
                }
            }
        });
    }

    PeelResult { kappa, order, max_kappa, stats }
}

/// Shared atomic state of a partially-parallel peel.
struct ParState {
    deg: Vec<AtomicU32>,
    /// round[i] = batch in which i was peeled (`u32::MAX` = still alive).
    round: Vec<AtomicU32>,
}

/// Partially parallel peeling: sequential level discovery, parallel
/// decrements inside each level (the Figure 1b baseline).
///
/// Dispatches flat-vs-walk like [`peel`]. A full `O(|R|)` scan happens
/// only when the threshold `k` increases (≤ `max κ + 1` times) — and that
/// scan is a single fused pass (min-find and frontier collect together,
/// with the `k + 1` min-degree floor carried across thresholds). Within a
/// threshold, the next frontier is collected from the decrement pass
/// itself (the CAS transition onto `k` detects each crossing exactly
/// once) into per-worker buffers merged after the chunk barrier.
pub fn peel_parallel<S: CliqueSpace>(space: &S, cfg: ParallelConfig) -> PeelResult {
    if let Some(flat) = space.as_flat() {
        return peel_parallel_flat(flat, cfg);
    }
    if let Some(flat) = FlatContainers::build_within(space, DEFAULT_CONTAINER_CACHE_BUDGET) {
        return peel_parallel_flat(&flat, cfg);
    }
    peel_parallel_walk(space, cfg)
}

/// [`peel_parallel`] through the space's container walk (ablation
/// reference / no-cache fallback).
pub fn peel_parallel_walk<S: CliqueSpace>(space: &S, cfg: ParallelConfig) -> PeelResult {
    peel_parallel_driver(
        space.num_cliques(),
        space.initial_degrees(),
        cfg,
        |state, v, k, current_round, crossed, stats| {
            space.for_each_container(v, |others| {
                stats.containers_scanned += 1;
                par_container(state, v, k, current_round, others.iter().copied(), crossed, stats);
            });
        },
    )
}

/// [`peel_parallel`] directly over a flat container cache.
pub fn peel_parallel_flat(flat: &FlatContainers, cfg: ParallelConfig) -> PeelResult {
    match flat.group() {
        1 => par_flat::<1>(flat, cfg),
        2 => par_flat::<2>(flat, cfg),
        3 => par_flat::<3>(flat, cfg),
        _ => par_flat::<0>(flat, cfg),
    }
}

fn par_flat<const G: usize>(flat: &FlatContainers, cfg: ParallelConfig) -> PeelResult {
    debug_assert!(G == 0 || flat.group() == G, "arity dispatch mismatch");
    let group = if G > 0 { G } else { flat.group().max(1) };
    let n = flat.num_cliques();
    let deg0 = (0..n).map(|i| flat.degree(i)).collect();
    peel_parallel_driver(n, deg0, cfg, |state, v, k, current_round, crossed, stats| {
        let row = flat.containers(v);
        stats.containers_scanned += (row.len() / group) as u64;
        for c in row.chunks_exact(group) {
            par_container(
                state,
                v,
                k,
                current_round,
                c.iter().map(|&o| o as usize),
                crossed,
                stats,
            );
        }
    })
}

/// Processes one container of frontier item `v` inside a decrement pass:
/// the dead/same-round ownership checks, then the floored CAS decrements.
#[inline]
fn par_container<I: Iterator<Item = usize> + Clone>(
    state: &ParState,
    v: usize,
    k: u32,
    current_round: u32,
    others: I,
    crossed: &mut Vec<u32>,
    stats: &mut PeelStats,
) {
    // Container dead if any member peeled in an earlier round; same-round
    // members would double-count it, so only the lowest-id same-round
    // member executes it.
    let mut min_same_round = v;
    for o in others.clone() {
        let r = state.round[o].load(Ordering::Relaxed);
        if r < current_round {
            stats.dead_containers += 1;
            return;
        }
        if r == current_round && o < min_same_round {
            min_same_round = o;
        }
    }
    if min_same_round != v {
        return;
    }
    for o in others {
        if state.round[o].load(Ordering::Relaxed) != u32::MAX {
            continue; // peeled this round: κ already fixed
        }
        // CAS loop: decrement but never below k. Whoever lands the
        // k+1 -> k transition owns the crossing.
        let mut cur = state.deg[o].load(Ordering::Relaxed);
        while cur > k {
            match state.deg[o].compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    stats.bucket_moves += 1;
                    if cur == k + 1 {
                        crossed.push(o as u32);
                    }
                    break;
                }
                Err(now) => cur = now,
            }
        }
    }
}

/// The threshold/frontier skeleton shared by the walk and flat parallel
/// engines; `process` handles the containers of one frontier item.
fn peel_parallel_driver<P>(n: usize, deg0: Vec<u32>, cfg: ParallelConfig, process: P) -> PeelResult
where
    P: Fn(&ParState, usize, u32, u32, &mut Vec<u32>, &mut PeelStats) + Sync,
{
    if n == 0 {
        return PeelResult::empty();
    }
    let state = ParState {
        deg: deg0.into_iter().map(AtomicU32::new).collect(),
        round: (0..n).map(|_| AtomicU32::new(u32::MAX)).collect(),
    };
    let mut kappa = vec![0u32; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut remaining = n;
    let mut k = 0u32;
    let mut current_round = 0u32;
    let mut frontier: Vec<usize> = Vec::new();
    let mut max_kappa = 0u32;
    let mut stats = PeelStats::default();
    // Carried floor on the minimum alive degree: once threshold k drains,
    // every alive item has degree ≥ k + 1 (the CAS never decrements below
    // k, and everything that reached k was peeled). This is what licenses
    // the direct `k = cur_min` threshold advance below — thresholds are
    // strictly increasing, no clamp against the previous k needed — and
    // it is debug-asserted against every scanned degree.
    let mut min_hint = 0u32;

    while remaining > 0 {
        if frontier.is_empty() {
            // Threshold exhausted: one fused O(|R|) pass finds the next
            // minimum degree AND collects its frontier (a new minimum
            // restarts the collection) — this used to be two full scans.
            let mut cur_min = u32::MAX;
            for i in 0..n {
                if state.round[i].load(Ordering::Relaxed) != u32::MAX {
                    continue;
                }
                let d = state.deg[i].load(Ordering::Relaxed);
                if d > cur_min {
                    continue;
                }
                if d < cur_min {
                    debug_assert!(d >= min_hint, "alive degree {d} below carried floor {min_hint}");
                    cur_min = d;
                    frontier.clear();
                }
                frontier.push(i);
            }
            debug_assert!(cur_min != u32::MAX, "remaining > 0 but no alive item found");
            // cur_min ≥ min_hint > previous k: advance directly.
            k = cur_min;
        }
        debug_assert!(!frontier.is_empty());
        for &i in &frontier {
            state.round[i].store(current_round, Ordering::Relaxed);
            kappa[i] = k;
            order.push(i as u32);
        }
        max_kappa = max_kappa.max(k);
        remaining -= frontier.len();

        // Parallel decrement pass over the frontier. Crossings accumulate
        // in per-worker buffers handed back by the scheduler — no shared
        // lock on the decrement path.
        let frontier_ref = &frontier;
        let state_ref = &state;
        let process_ref = &process;
        let (_, locals) = parallel_for_chunks_collect(
            frontier.len(),
            cfg,
            || (Vec::<u32>::new(), PeelStats::default()),
            |(crossed, local_stats), range| {
                for fi in range {
                    process_ref(
                        state_ref,
                        frontier_ref[fi],
                        k,
                        current_round,
                        crossed,
                        local_stats,
                    );
                }
            },
        );
        current_round += 1;

        // Next frontier at the same threshold: the crossings (still alive,
        // deduped — an item crosses at most once, but guard anyway).
        frontier.clear();
        let mut crossed_items: Vec<u32> = Vec::new();
        for (mut crossed, local_stats) in locals {
            crossed_items.append(&mut crossed);
            stats.merge(&local_stats);
        }
        crossed_items.sort_unstable();
        crossed_items.dedup();
        frontier.extend(
            crossed_items
                .into_iter()
                .map(|i| i as usize)
                .filter(|&i| state.round[i].load(Ordering::Relaxed) == u32::MAX),
        );
        if frontier.is_empty() {
            min_hint = k + 1;
        }
    }

    PeelResult { kappa, order, max_kappa, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{CachedSpace, CoreSpace, GenericSpace, Nucleus34Space, TrussSpace};
    use hdsd_graph::graph_from_edges;

    fn complete(n: u32) -> hdsd_graph::CsrGraph {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        graph_from_edges(edges)
    }

    /// The paper's Figure 2a graph: three nested cores.
    /// A triangle-rich 3-core (clique-ish), a 2-core ring, a 1-core tail.
    fn paper_core_graph() -> hdsd_graph::CsrGraph {
        // 3-core: K4 on {0,1,2,3}; 2-core: cycle {4,5,6} attached to 0;
        // 1-core: path 7-8 hanging off 4.
        graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3), // K4
            (4, 5),
            (5, 6),
            (6, 4),
            (0, 4), // triangle + bridge
            (4, 7),
            (7, 8), // tail
        ])
    }

    #[test]
    fn core_peeling_on_nested_graph() {
        let g = paper_core_graph();
        let sp = CoreSpace::new(&g);
        let r = peel(&sp);
        assert_eq!(&r.kappa[0..4], &[3, 3, 3, 3]);
        assert_eq!(&r.kappa[4..7], &[2, 2, 2]);
        assert_eq!(&r.kappa[7..9], &[1, 1]);
        assert_eq!(r.max_kappa, 3);
    }

    #[test]
    fn order_is_nondecreasing_kappa() {
        let g = paper_core_graph();
        let sp = CoreSpace::new(&g);
        let r = peel(&sp);
        let ks: Vec<u32> = r.order.iter().map(|&i| r.kappa[i as usize]).collect();
        assert!(ks.windows(2).all(|w| w[0] <= w[1]), "order {ks:?}");
    }

    #[test]
    fn truss_peeling_on_complete_graphs() {
        for n in 3..8u32 {
            let g = complete(n);
            let sp = TrussSpace::precomputed(&g);
            let r = peel(&sp);
            // Every edge of K_n is in exactly n−2 triangles and the whole
            // graph is the maximal truss: κ3 = n−2 everywhere.
            assert!(r.kappa.iter().all(|&k| k == n - 2), "K{n}: {:?}", r.kappa);
        }
    }

    #[test]
    fn nucleus34_peeling_on_complete_graphs() {
        for n in 4..8u32 {
            let g = complete(n);
            let sp = Nucleus34Space::precomputed(&g);
            let r = peel(&sp);
            // Every triangle of K_n is in n−3 4-cliques.
            assert!(r.kappa.iter().all(|&k| k == n - 3), "K{n}: {:?}", r.kappa);
        }
    }

    #[test]
    fn truss_peeling_matches_paper_figure3() {
        // Paper Figure 3a: K4 on {a,b,c,d} plus K4 on {c,d,e,f} sharing the
        // edge cd, plus pendant structure g,h. Truss numbers: edges inside
        // each K4 get 2; with the h vertex attached to e,f with one triangle
        // those edges get 1; pendant edges 0.
        // We reproduce the left graph: a=0,b=1,c=2,d=3,e=4,f=5,g=6,h=7.
        let g = graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3), // K4 abcd
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5), // K4 cdef (via cd)
            (4, 6), // pendant g on e
            (4, 7),
            (5, 7), // h triangle with e,f
        ]);
        let sp = TrussSpace::precomputed(&g);
        let r = peel(&sp);
        let k_of = |u: u32, v: u32| r.kappa[g.edge_id(u, v).unwrap() as usize];
        // Edges of K4 abcd are each in 2 triangles within the K4.
        assert_eq!(k_of(0, 1), 2);
        assert_eq!(k_of(2, 3), 2);
        assert_eq!(k_of(4, 5), 2);
        // Pendant edge (4,6): no triangles.
        assert_eq!(k_of(4, 6), 0);
        // h's edges (4,7),(5,7): one triangle {4,5,7}.
        assert_eq!(k_of(4, 7), 1);
        assert_eq!(k_of(5, 7), 1);
    }

    #[test]
    fn generic_matches_specialized_spaces() {
        let g = graph_from_edges([
            (0, 1),
            (0, 2),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 2),
            (1, 3),
            (0, 4),
            (1, 4),
        ]);
        // (1,2)
        let gen12 = GenericSpace::new(&g, 1, 2);
        let core = CoreSpace::new(&g);
        assert_eq!(peel(&gen12).kappa, peel(&core).kappa);
        // (2,3): generic edge ids are lexicographic like CSR edge ids.
        let gen23 = GenericSpace::new(&g, 2, 3);
        let truss = TrussSpace::precomputed(&g);
        let a = peel(&gen23).kappa;
        let b = peel(&truss).kappa;
        // Generic r-cliques for r=2 enumerate in the same (u,v) lexicographic
        // order as CSR edge ids, so results align index-by-index.
        assert_eq!(a, b);
    }

    /// The flat engine is bit-identical to the walk on every space —
    /// κ, order, max κ, and the deterministic work counters.
    #[test]
    fn flat_engine_is_bit_identical_to_walk() {
        let g = hdsd_datasets::holme_kim(120, 4, 0.5, 3);
        let truss = TrussSpace::precomputed(&g);
        let nuc = Nucleus34Space::precomputed(&g);
        let gen13 = GenericSpace::new(&g, 1, 3);
        // group = binom(4,2) − 1 = 5: beyond every monomorphized arity, so
        // this hits the width-at-runtime fallback (`run::<0>`).
        let gen24 = GenericSpace::new(&g, 2, 4);
        let core = CoreSpace::new(&g);

        let mut engine = PeelEngine::new();
        for (walk, flat) in [
            (peel_walk(&truss), FlatContainers::build(&truss)),
            (peel_walk(&nuc), FlatContainers::build(&nuc)),
            (peel_walk(&gen13), FlatContainers::build(&gen13)),
            (peel_walk(&gen24), FlatContainers::build(&gen24)),
            (peel_walk(&core), FlatContainers::build(&core)),
        ] {
            // Both the one-shot form and the engine (scratch reused across
            // differently-sized spaces) must agree with the walk.
            for r in [peel_flat(&flat), engine.peel(&flat)] {
                assert_eq!(r.kappa, walk.kappa);
                assert_eq!(r.order, walk.order);
                assert_eq!(r.max_kappa, walk.max_kappa);
                assert_eq!(r.stats, walk.stats);
            }
        }
    }

    #[test]
    fn peel_dispatch_uses_the_resident_flat_rows() {
        let g = paper_core_graph();
        let truss = TrussSpace::precomputed(&g);
        let cached = CachedSpace::build(&truss);
        // CachedSpace advertises its rows; peel must take the flat path and
        // agree with every other engine.
        assert!(cached.as_flat().is_some());
        let via_cached = peel(&cached);
        let via_space = peel(&truss);
        let via_walk = peel_walk(&truss);
        assert_eq!(via_cached.kappa, via_walk.kappa);
        assert_eq!(via_space.kappa, via_walk.kappa);
        assert_eq!(via_cached.order, via_walk.order);
        assert_eq!(via_cached.stats, via_walk.stats);
    }

    #[test]
    fn stats_count_real_work() {
        let g = paper_core_graph();
        let sp = CoreSpace::new(&g);
        let r = peel(&sp);
        // Every container incidence is visited exactly once: Σ d_S = 2|E|.
        assert_eq!(r.stats.containers_scanned, 2 * g.num_edges() as u64);
        assert!(r.stats.dead_containers > 0);
        assert!(r.stats.bucket_moves > 0);
        // Dead + decremented-or-at-floor partition the incidences.
        assert!(r.stats.dead_containers < r.stats.containers_scanned);
    }

    #[test]
    fn parallel_peel_matches_sequential() {
        let g = paper_core_graph();
        let sp = CoreSpace::new(&g);
        let seq = peel(&sp);
        for threads in [1, 2, 4] {
            let par = peel_parallel(&sp, ParallelConfig::with_threads(threads).chunk(2));
            assert_eq!(par.kappa, seq.kappa, "threads={threads}");
        }
        let tsp = TrussSpace::precomputed(&g);
        let seq_t = peel(&tsp);
        let par_t = peel_parallel(&tsp, ParallelConfig::with_threads(3).chunk(1));
        assert_eq!(par_t.kappa, seq_t.kappa);
        // The flat and walk parallel engines agree too.
        let flat = FlatContainers::build(&tsp);
        let par_flat = peel_parallel_flat(&flat, ParallelConfig::with_threads(3).chunk(1));
        let par_walk = peel_parallel_walk(&tsp, ParallelConfig::with_threads(3).chunk(1));
        assert_eq!(par_flat.kappa, seq_t.kappa);
        assert_eq!(par_walk.kappa, seq_t.kappa);
    }

    #[test]
    fn parallel_counters_are_deterministic_across_thread_counts() {
        let g = hdsd_datasets::holme_kim(150, 4, 0.5, 9);
        let sp = TrussSpace::precomputed(&g);
        let one = peel_parallel(&sp, ParallelConfig::with_threads(1).chunk(8));
        for threads in [2, 4] {
            let par = peel_parallel(&sp, ParallelConfig::with_threads(threads).chunk(8));
            assert_eq!(par.kappa, one.kappa);
            assert_eq!(par.stats, one.stats, "threads={threads}");
        }
    }

    #[test]
    fn empty_space() {
        let g = graph_from_edges([]);
        let sp = CoreSpace::new(&g);
        let r = peel(&sp);
        assert!(r.kappa.is_empty());
        assert_eq!(r.max_kappa, 0);
        assert_eq!(r.stats, PeelStats::default());
        let flat = FlatContainers::build(&sp);
        assert!(peel_flat(&flat).kappa.is_empty());
    }

    #[test]
    fn isolated_vertices_get_zero() {
        let g = hdsd_graph::GraphBuilder::new().with_num_vertices(5).edges([(0, 1)]).build();
        let sp = CoreSpace::new(&g);
        let r = peel(&sp);
        assert_eq!(r.kappa, vec![1, 1, 0, 0, 0]);
        assert_eq!(peel_flat(&FlatContainers::build(&sp)).kappa, r.kappa);
    }
}
