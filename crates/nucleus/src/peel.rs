//! The peeling baseline (the paper's Algorithm 1).
//!
//! [`peel`] is the exact, sequential, bucket-queue algorithm — the
//! generalization of Batagelj–Zaveršnik `O(|E|)` k-core peeling to any
//! (r, s) space. It is the ground truth every local algorithm is verified
//! against, and the baseline every benchmark compares with.
//!
//! Two engines serve it:
//!
//! * [`peel_flat`] / [`PeelEngine`] — the **flat engine**: the bucket queue
//!   runs directly over [`FlatContainers`] CSR slices. Degree bins, the
//!   position permutation (`u32`, half the cache traffic of the old
//!   `usize` arrays) and every container row are contiguous; the inner
//!   loop is monomorphized per container arity (`group == 2` — the truss
//!   space — unrolls to a two-others fast path), and dead containers are
//!   skipped by a members-already-peeled check on the flat row with no
//!   closure dispatch anywhere.
//! * [`peel_walk`] — the original container-walk form, kept as the
//!   ablation reference and the fallback for spaces with no cache.
//!
//! [`peel`] dispatches: a space that already owns flat rows
//! ([`CliqueSpace::as_flat`], e.g. the engine-resident
//! [`CachedSpace`](crate::space::CachedSpace)) is peeled flat in place; a
//! space that prefers a cache gets one when it fits the default byte
//! budget (the same [`FlatContainers::build_within`] gate the sweep
//! drivers use); everything else walks.
//!
//! [`peel_parallel`] / [`peel_parallel_flat`] is the **barrier-free
//! drain**: the "partially parallel peeling" comparator of the paper's
//! Figure 1b, rebuilt without per-level barriers. Workers claim bucket
//! chunks from a shared atomic cursor ([`ChunkCursor`] for the fused
//! min-find + candidate scan, [`DrainQueue`] for the decrement drain) and
//! drain continuously: a follow-on item whose degree crosses the current
//! threshold is pushed by the unique worker whose CAS landed the
//! `k + 1 → k` crossing, so each item enters the queue exactly once and
//! workers never wait for a level to "finish" — a [`QuiescenceCounter`]
//! detects the true end of the cascade. Stale degree reads are harmless
//! by construction: κ doubles as the peeled mark, so a racing decrement
//! against an already-peeled item is discarded by the κ-check (the same
//! argument that makes the And iteration of the companion paper
//! barrier-tolerant). The contended tail (few alive items) finishes in a
//! sequential epilogue, and a single worker delegates to the bucket-queue
//! engine outright. Every published output is schedule-independent — κ,
//! the canonical `(κ, id)` order, and closed-form [`PeelStats`] — so the
//! result is **bit-identical** to [`peel_flat`] for every thread count,
//! seed, and interleaving (`tests/parallel_determinism.rs` proves it
//! under seeded schedule jitter); schedule-*dependent* telemetry is
//! quarantined in [`DrainStats`].

use hdsd_parallel::{
    AtomicBitset, ChunkCursor, DrainControl, DrainEvent, DrainQueue, ParallelConfig, PhaseGate,
    QuiescenceCounter, WorkerControl,
};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Mutex;

use crate::cancel::{CancelToken, Cancelled};
use crate::convergence::DEFAULT_CONTAINER_CACHE_BUDGET;
use crate::space::{CliqueSpace, FlatContainers};

/// Items processed between cancellation checks in the sequential bucket
/// queue — the "one chunk" the mid-peel overshoot bound is stated in.
pub const PEEL_CANCEL_CHUNK: usize = 1024;

/// A peel aborted by a tripped [`CancelToken`]: the trip itself plus how
/// many items had already been peeled, so tests can pin the overshoot to
/// at most one [`PEEL_CANCEL_CHUNK`] (sequential) or one claim chunk
/// (parallel drain) past the trip point.
#[derive(Clone, Debug)]
pub struct PeelCancelled {
    /// Why and where the token tripped.
    pub cancelled: Cancelled,
    /// Items fully peeled before the abort.
    pub processed: usize,
}

impl From<PeelCancelled> for String {
    fn from(p: PeelCancelled) -> String {
        p.cancelled.message()
    }
}

/// Deterministic work counters of one peeling run.
///
/// For the sequential engines these are exact and identical between the
/// walk and flat forms (same algorithm, same visit order) — the CI bench
/// gate pins them as a drift check. The barrier-free parallel drain
/// reports **bit-identical** values too: each counter has a closed form
/// that no schedule can perturb (`containers_scanned = Σ d_S`,
/// `dead_containers = Σ d_S − #containers`,
/// `bucket_moves = Σ d_S − Σ κ`). Schedule-*dependent* telemetry lives in
/// [`DrainStats`] instead, precisely so this struct can be compared
/// bit-for-bit across thread counts and seeds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeelStats {
    /// s-clique containers visited (Σ d_S over peeled r-cliques).
    pub containers_scanned: u64,
    /// Containers skipped because a member was already peeled.
    pub dead_containers: u64,
    /// Bucket-queue moves (one per successful degree decrement).
    pub bucket_moves: u64,
}

/// Schedule-dependent telemetry of one barrier-free drain run. These vary
/// across thread counts and seeds (that is their point — they describe the
/// schedule, not the decomposition), so they are kept out of [`PeelStats`]
/// and never take part in determinism comparisons.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Chunk claims (scan cursor + drain queue) across all workers.
    pub chunks_claimed: u64,
    /// Drained items that were pushed by a different worker.
    pub steals: u64,
    /// Failed degree-CAS attempts (contention retries on stale reads).
    pub stale_retries: u64,
    /// Items peeled by the sequential tail epilogue.
    pub epilogue_items: u64,
}

impl DrainStats {
    fn merge(&mut self, other: &DrainStats) {
        self.chunks_claimed += other.chunks_claimed;
        self.steals += other.steals;
        self.stale_retries += other.stale_retries;
        self.epilogue_items += other.epilogue_items;
    }
}

/// Output of a peeling run.
#[derive(Clone, Debug)]
pub struct PeelResult {
    /// Exact κ index per r-clique.
    pub kappa: Vec<u32>,
    /// r-clique ids in processing (non-decreasing κ) order.
    pub order: Vec<u32>,
    /// Maximum κ.
    pub max_kappa: u32,
    /// Deterministic work counters of the run.
    pub stats: PeelStats,
    /// Schedule telemetry of the parallel drain (`None` for the
    /// sequential engines).
    pub drain: Option<DrainStats>,
}

impl PeelResult {
    fn empty() -> PeelResult {
        PeelResult {
            kappa: Vec::new(),
            order: Vec::new(),
            max_kappa: 0,
            stats: PeelStats::default(),
            drain: None,
        }
    }
}

/// Exact sequential peeling over any clique space (Algorithm 1).
///
/// Dispatches to the fastest engine for the space: a resident flat cache
/// ([`CliqueSpace::as_flat`]) is peeled in place, a space that prefers a
/// cache within [`DEFAULT_CONTAINER_CACHE_BUDGET`] gets one built for the
/// run, and everything else falls back to [`peel_walk`]. All three paths
/// produce bit-identical results (κ, order, max κ — property-tested).
pub fn peel<S: CliqueSpace>(space: &S) -> PeelResult {
    if let Some(flat) = space.as_flat() {
        return peel_flat(flat);
    }
    if let Some(flat) = FlatContainers::build_within(space, DEFAULT_CONTAINER_CACHE_BUDGET) {
        return peel_flat(&flat);
    }
    peel_walk(space)
}

/// [`peel`] with cooperative cancellation: the token is checked every
/// [`PEEL_CANCEL_CHUNK`] peeled items, so a tripped deadline aborts the
/// run within one chunk instead of completing the full decomposition.
/// Spaces without flat rows fall back to the (uncancellable) walk only
/// when a cache cannot be built — the serving engine always has rows.
pub fn peel_within<S: CliqueSpace>(
    space: &S,
    cancel: &CancelToken,
) -> Result<PeelResult, PeelCancelled> {
    if let Some(flat) = space.as_flat() {
        return PeelEngine::new().peel_within(flat, cancel);
    }
    if let Some(flat) = FlatContainers::build_within(space, DEFAULT_CONTAINER_CACHE_BUDGET) {
        return PeelEngine::new().peel_within(&flat, cancel);
    }
    cancel.check("peel walk").map_err(|c| PeelCancelled { cancelled: c, processed: 0 })?;
    Ok(peel_walk(space))
}

/// Exact sequential peeling over a flat container cache (the hot engine;
/// see [`PeelEngine`] for the reusable-buffer form).
pub fn peel_flat(flat: &FlatContainers) -> PeelResult {
    hdsd_telemetry::span!("peel.flat");
    PeelEngine::new().peel(flat)
}

/// Reusable flat peeling engine: owns the bucket-queue scratch (degree
/// bins, position permutation) so repeated peels — engine startup over
/// several spaces, property harnesses, benches — pay one warm allocation
/// instead of five fresh arrays per run.
///
/// The inner loop is monomorphized per container arity: `group == 1`
/// (core), `2` (truss — the two-others fast path), `3` ((3,4) nucleus),
/// with a dynamic-width fallback for generic spaces.
#[derive(Default)]
pub struct PeelEngine {
    /// Current S-degrees (mutated by peeling).
    deg: Vec<u32>,
    /// First unprocessed position of each degree bucket.
    bucket_start: Vec<usize>,
    /// Position of each r-clique in the processing permutation.
    pos_of: Vec<u32>,
    /// The permutation itself (positions sorted by current degree).
    item_at: Vec<u32>,
    /// Bucket-fill cursor used during initialization.
    cursor: Vec<usize>,
}

impl PeelEngine {
    /// An engine with empty scratch (buffers grow on first use).
    pub fn new() -> PeelEngine {
        PeelEngine::default()
    }

    /// Peels `flat` exactly, reusing this engine's scratch buffers.
    pub fn peel(&mut self, flat: &FlatContainers) -> PeelResult {
        self.peel_within(flat, &CancelToken::none()).expect("an unarmed token never cancels")
    }

    /// [`Self::peel`] with a cancellation check every
    /// [`PEEL_CANCEL_CHUNK`] peeled items.
    pub fn peel_within(
        &mut self,
        flat: &FlatContainers,
        cancel: &CancelToken,
    ) -> Result<PeelResult, PeelCancelled> {
        match flat.group() {
            1 => self.run::<1>(flat, cancel),
            2 => self.run::<2>(flat, cancel),
            3 => self.run::<3>(flat, cancel),
            _ => self.run::<0>(flat, cancel), // 0 = dynamic width
        }
    }

    /// Peels `flat` with the configured engine: the barrier-free parallel
    /// drain when `cfg.threads > 1`, otherwise the sequential bucket queue
    /// (which reuses this engine's scratch). The parallel path produces κ
    /// and `PeelStats` bit-identical to the sequential one; only the order
    /// convention differs (canonical `(κ, id)` vs bucket-queue history).
    pub fn peel_with(&mut self, flat: &FlatContainers, cfg: ParallelConfig) -> PeelResult {
        if cfg.threads > 1 {
            peel_parallel_flat(flat, cfg)
        } else {
            self.peel(flat)
        }
    }

    /// The bucket-queue peel with the container arity monomorphized
    /// (`G == 0` reads the width at runtime — the generic-space fallback).
    fn run<const G: usize>(
        &mut self,
        flat: &FlatContainers,
        cancel: &CancelToken,
    ) -> Result<PeelResult, PeelCancelled> {
        let n = flat.num_cliques();
        if n == 0 {
            return Ok(PeelResult::empty());
        }
        let armed = cancel.is_armed();
        debug_assert!(G == 0 || flat.group() == G, "arity dispatch mismatch");
        let group = if G > 0 { G } else { flat.group().max(1) };
        let mut stats = PeelStats::default();

        // τ₀ straight off the CSR offsets; degree bins by counting sort.
        self.deg.clear();
        self.deg.extend((0..n).map(|i| flat.degree(i)));
        let max_deg = self.deg.iter().copied().max().unwrap_or(0) as usize;
        self.bucket_start.clear();
        self.bucket_start.resize(max_deg + 2, 0);
        for &d in &self.deg {
            self.bucket_start[d as usize + 1] += 1;
        }
        for i in 0..=max_deg {
            self.bucket_start[i + 1] += self.bucket_start[i];
        }
        self.pos_of.clear();
        self.pos_of.resize(n, 0);
        self.item_at.clear();
        self.item_at.resize(n, 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.bucket_start);
        for v in 0..n {
            let p = self.cursor[self.deg[v] as usize];
            self.pos_of[v] = p as u32;
            self.item_at[p] = v as u32;
            self.cursor[self.deg[v] as usize] = p + 1;
        }

        let mut kappa = vec![0u32; n];
        let mut order = Vec::with_capacity(n);
        let mut max_kappa = 0u32;

        for i in 0..n {
            if armed && i % PEEL_CANCEL_CHUNK == 0 {
                if let Err(c) = cancel.check("peel drain") {
                    return Err(PeelCancelled { cancelled: c, processed: i });
                }
            }
            let v = self.item_at[i] as usize;
            let kv = self.deg[v];
            kappa[v] = kv;
            max_kappa = max_kappa.max(kv);
            order.push(v as u32);

            let row = flat.containers(v);
            stats.containers_scanned += (row.len() / group) as u64;
            for c in row.chunks_exact(group) {
                // Dead-container skip on the flat row: positions are
                // processed in order and alive items always sit past the
                // cursor, so `pos ≤ i` ⇔ the member is peeled and the
                // s-clique is gone.
                if c.iter().any(|&o| self.pos_of[o as usize] as usize <= i) {
                    stats.dead_containers += 1;
                    continue;
                }
                for &o in c {
                    let o = o as usize;
                    let d = self.deg[o];
                    if d > kv {
                        // Move o to the front of its bucket, then decrement.
                        let front = self.bucket_start[d as usize].max(i + 1);
                        let po = self.pos_of[o] as usize;
                        if po != front {
                            let other = self.item_at[front];
                            self.item_at[po] = other;
                            self.item_at[front] = o as u32;
                            self.pos_of[other as usize] = po as u32;
                            self.pos_of[o] = front as u32;
                        }
                        self.bucket_start[d as usize] = front + 1;
                        self.deg[o] = d - 1;
                        stats.bucket_moves += 1;
                    }
                }
            }
        }

        Ok(PeelResult { kappa, order, max_kappa, stats, drain: None })
    }
}

/// Exact sequential peeling through the space's container walk — the
/// pre-flat form, kept as the ablation reference (`BENCH_peel.json`'s
/// "walk" rows) and the fallback for spaces with no cache. Bit-identical
/// to [`peel_flat`] on the same space.
pub fn peel_walk<S: CliqueSpace>(space: &S) -> PeelResult {
    hdsd_telemetry::span!("peel.walk");
    let n = space.num_cliques();
    if n == 0 {
        return PeelResult::empty();
    }
    let mut deg = space.initial_degrees();
    let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;
    let mut stats = PeelStats::default();

    // Bucket queue over degree values (positions sorted by current degree).
    let mut bucket_start = vec![0usize; max_deg + 2];
    for &d in &deg {
        bucket_start[d as usize + 1] += 1;
    }
    for i in 0..=max_deg {
        bucket_start[i + 1] += bucket_start[i];
    }
    let mut pos_of = vec![0usize; n];
    let mut item_at = vec![0usize; n];
    {
        let mut cursor = bucket_start.clone();
        for (v, &d) in deg.iter().enumerate() {
            pos_of[v] = cursor[d as usize];
            item_at[cursor[d as usize]] = v;
            cursor[d as usize] += 1;
        }
    }

    let mut processed = vec![false; n];
    let mut kappa = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    let mut max_kappa = 0u32;

    for i in 0..n {
        let v = item_at[i];
        processed[v] = true;
        let kv = deg[v];
        kappa[v] = kv;
        max_kappa = max_kappa.max(kv);
        order.push(v as u32);

        space.for_each_container(v, |others| {
            stats.containers_scanned += 1;
            // Algorithm 1: if any r-clique of this s-clique was already
            // processed, the s-clique is gone; skip.
            if others.iter().any(|&o| processed[o]) {
                stats.dead_containers += 1;
                return;
            }
            for &o in others {
                if deg[o] > kv {
                    // Move o to the front of its bucket, then decrement.
                    let d = deg[o] as usize;
                    let front = bucket_start[d].max(i + 1);
                    let po = pos_of[o];
                    if po != front {
                        let other_item = item_at[front];
                        item_at.swap(po, front);
                        pos_of[other_item] = po;
                        pos_of[o] = front;
                    }
                    bucket_start[d] = front + 1;
                    deg[o] -= 1;
                    stats.bucket_moves += 1;
                }
            }
        });
    }

    PeelResult { kappa, order, max_kappa, stats, drain: None }
}

/// Barrier-free parallel peeling over any clique space.
///
/// The drain engine runs over flat CSR rows: a space that already owns them
/// ([`CliqueSpace::as_flat`]) is peeled in place; any other space gets a
/// cache built for the run (flat rows are the prerequisite for chunked
/// claiming, so there is no walk-based parallel form — `peel_walk` remains
/// the sequential fallback and ablation baseline).
pub fn peel_parallel<S: CliqueSpace>(space: &S, cfg: ParallelConfig) -> PeelResult {
    peel_parallel_with(space, cfg, &DrainControl::default())
}

/// [`peel_parallel`] with an explicit schedule control (seeded jitter or
/// failpoint hooks — the determinism harness's entry point).
pub fn peel_parallel_with<S: CliqueSpace>(
    space: &S,
    cfg: ParallelConfig,
    ctl: &DrainControl,
) -> PeelResult {
    if let Some(flat) = space.as_flat() {
        return peel_parallel_flat_with(flat, cfg, ctl);
    }
    if let Some(flat) = FlatContainers::build_within(space, DEFAULT_CONTAINER_CACHE_BUDGET) {
        return peel_parallel_flat_with(&flat, cfg, ctl);
    }
    let flat = FlatContainers::build(space);
    peel_parallel_flat_with(&flat, cfg, ctl)
}

/// [`peel_parallel`] directly over a flat container cache.
pub fn peel_parallel_flat(flat: &FlatContainers, cfg: ParallelConfig) -> PeelResult {
    peel_parallel_flat_with(flat, cfg, &DrainControl::default())
}

/// The barrier-free work-stealing drain over flat rows (see the module
/// docs for the design; [`DrainControl`] injects schedule perturbations).
pub fn peel_parallel_flat_with(
    flat: &FlatContainers,
    cfg: ParallelConfig,
    ctl: &DrainControl,
) -> PeelResult {
    peel_parallel_flat_within(flat, cfg, ctl, &CancelToken::none())
        .expect("an unarmed token never cancels")
}

/// [`peel_parallel_flat_with`] with cooperative cancellation: every
/// worker checks the token before each chunk claim (scan cursor and
/// drain queue alike), so a tripped token stops the whole team within
/// one in-flight chunk per worker — the first observer poisons the phase
/// gate and the rest unwind through the existing panic-containment exits.
pub fn peel_parallel_flat_within(
    flat: &FlatContainers,
    cfg: ParallelConfig,
    ctl: &DrainControl,
    cancel: &CancelToken,
) -> Result<PeelResult, PeelCancelled> {
    hdsd_telemetry::span!("peel.parallel");
    let result = match flat.group() {
        1 => drain_peel::<1>(flat, cfg, ctl, cancel),
        2 => drain_peel::<2>(flat, cfg, ctl, cancel),
        3 => drain_peel::<3>(flat, cfg, ctl, cancel),
        _ => drain_peel::<0>(flat, cfg, ctl, cancel),
    }?;
    if let Some(d) = &result.drain {
        hdsd_telemetry::counter_add!("peel_parallel_chunks_claimed_total", d.chunks_claimed);
        hdsd_telemetry::counter_add!("peel_parallel_steals_total", d.steals);
        hdsd_telemetry::counter_add!("peel_parallel_stale_retries_total", d.stale_retries);
        hdsd_telemetry::counter_add!("peel_parallel_epilogue_items_total", d.epilogue_items);
    }
    Ok(result)
}

/// Everything the drain workers share, borrowed across the single
/// `thread::scope` that spans the whole peel.
struct DrainShared<'a> {
    flat: &'a FlatContainers,
    /// Canonical container ids (empty for `group == 1`, where the single
    /// other member needs no kill arbitration).
    keys: &'a [u32],
    /// Exactly-once container-kill claims, indexed by canonical key.
    claimed: AtomicBitset,
    /// Current S-degrees (floored CAS decrements, relaxed).
    deg: Vec<AtomicU32>,
    /// κ per r-clique; `u32::MAX` = still alive. Doubles as the peeled
    /// check that makes stale degree reads harmless.
    kappa: Vec<AtomicU32>,
    /// The shared frontier: every r-clique is pushed exactly once.
    queue: DrainQueue,
    /// Issued/retired quiescence counting for drain-phase termination.
    quiesce: QuiescenceCounter,
    /// SCAN → DRAIN phase machine (leader = worker 0).
    gate: PhaseGate,
    /// Claim cursor for the fused min-find/collect scans.
    scan: ChunkCursor,
    /// Per-worker fused-scan results, merged by the leader.
    slots: Vec<Mutex<(u32, Vec<u32>)>>,
    /// Current peel threshold, published by the leader through the gate.
    threshold: AtomicU32,
    /// Raised by the leader when the peel is complete.
    done: AtomicBool,
    /// Request-scoped cancellation, probed before every chunk claim.
    cancel: &'a CancelToken,
    /// Cached [`CancelToken::is_armed`] so the common uncancellable path
    /// pays a single bool test per claim.
    cancel_armed: bool,
    /// First observed trip; the observer also poisons the gate so every
    /// other worker unwinds through the existing containment exits.
    first_cancel: Mutex<Option<Cancelled>>,
}

impl DrainShared<'_> {
    /// Worker-side cancellation probe, called before each chunk claim.
    /// On trip: records the first `Cancelled`, poisons the gate, returns
    /// true so the caller can exit. A claimed chunk is never abandoned —
    /// overshoot is bounded to one in-flight chunk per worker.
    fn cancel_tripped(&self) -> bool {
        if !self.cancel_armed {
            return false;
        }
        match self.cancel.check("peel drain") {
            Ok(()) => false,
            Err(c) => {
                let mut slot = self.first_cancel.lock().expect("cancel slot");
                if slot.is_none() {
                    *slot = Some(c);
                }
                drop(slot);
                self.gate.poison();
                true
            }
        }
    }
}

/// Alive-count floor below which the leader finishes sequentially: with
/// this little work left, claim traffic costs more than it buys.
fn epilogue_floor(n: usize) -> usize {
    (n / 8).clamp(32, 2048)
}

fn drain_peel<const G: usize>(
    flat: &FlatContainers,
    cfg: ParallelConfig,
    ctl: &DrainControl,
    cancel: &CancelToken,
) -> Result<PeelResult, PeelCancelled> {
    debug_assert!(G == 0 || flat.group() == G, "arity dispatch mismatch");
    let group = if G > 0 { G } else { flat.group().max(1) };
    let n = flat.num_cliques();
    if n == 0 {
        return Ok(PeelResult::empty());
    }
    let threads = cfg.threads.max(1).min(n);

    // A single worker gains nothing from the drain machinery, and for
    // inputs at or below the epilogue floor the drain would immediately
    // hand everything to the sequential tail anyway. The bucket-queue
    // engine is the optimal sequential algorithm, and every published
    // output — κ, the canonical (κ, id) order, the closed-form counters —
    // is schedule-independent, so delegating is bit-identical and faster.
    if threads == 1 || n <= epilogue_floor(n) {
        let mut r = PeelEngine::new().peel_within(flat, cancel)?;
        (r.order, r.max_kappa) = canonical_order(&r.kappa);
        r.drain = Some(DrainStats { epilogue_items: n as u64, ..DrainStats::default() });
        return Ok(r);
    }

    // Canonical container ids power the exactly-once kill claims. For
    // group == 1 (core) the container has a single other member, so the
    // only possible double-decrement targets an already-peeled item —
    // harmless by the κ-check — and no claim bitmap is needed at all.
    let keys: &[u32] = if group >= 2 { flat.container_keys() } else { &[] };
    let shared = DrainShared {
        flat,
        keys,
        claimed: AtomicBitset::new(keys.len(), false),
        deg: (0..n).map(|i| AtomicU32::new(flat.degree(i))).collect(),
        kappa: (0..n).map(|_| AtomicU32::new(u32::MAX)).collect(),
        queue: DrainQueue::new(n),
        quiesce: QuiescenceCounter::new(),
        gate: PhaseGate::new(threads),
        scan: ChunkCursor::new(n),
        slots: (0..threads).map(|_| Mutex::new((u32::MAX, Vec::new()))).collect(),
        threshold: AtomicU32::new(0),
        done: AtomicBool::new(false),
        cancel,
        cancel_armed: cancel.is_armed(),
        first_cancel: Mutex::new(None),
    };

    let mut drain = DrainStats::default();
    {
        let floor = epilogue_floor(n);
        let locals = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for w in 0..threads {
                let shared = &shared;
                let wctl = ctl.worker(w);
                handles.push(scope.spawn(move || {
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        drain_worker::<G>(shared, wctl, floor)
                    }));
                    if out.is_err() {
                        shared.gate.poison();
                    }
                    out
                }));
            }
            let mut locals = Vec::with_capacity(threads);
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for h in handles {
                match h.join().expect("drain worker join") {
                    Ok(local) => locals.push(local),
                    Err(payload) => panic = Some(payload),
                }
            }
            if let Some(payload) = panic {
                std::panic::resume_unwind(payload);
            }
            locals
        });
        for local in &locals {
            drain.merge(local);
        }
    }

    // A tripped token leaves the drain state partially peeled; report how
    // far it got (κ entries fixed) so callers can bound the overshoot.
    if let Some(c) = shared.first_cancel.lock().expect("cancel slot").take() {
        let processed =
            shared.kappa.iter().filter(|k| k.load(Ordering::Relaxed) != u32::MAX).count();
        return Err(PeelCancelled { cancelled: c, processed });
    }

    // Closed-form PeelStats: every counter of the sequential flat engine
    // is schedule-independent, so the parallel run reports bit-identical
    // values. Each r-clique's full row is scanned exactly once when it is
    // peeled (Σ d_S); each physical container is killed by exactly one
    // member and seen dead by the other `group` members
    // (dead = Σ d_S − #containers, with (group+1) · #containers = Σ d_S);
    // and each item is decremented from its initial degree to κ
    // (moves = Σ d_S − Σ κ).
    let kappa: Vec<u32> = shared.kappa.iter().map(|k| k.load(Ordering::Relaxed)).collect();
    debug_assert!(kappa.iter().all(|&k| k != u32::MAX), "drain left an item unpeeled");
    let scanned: u64 = (0..n).map(|i| flat.degree(i) as u64).sum();
    debug_assert_eq!(scanned % (group as u64 + 1), 0, "Σ d_S must be (group+1)·#containers");
    let kappa_sum: u64 = kappa.iter().map(|&k| k as u64).sum();
    let stats = PeelStats {
        containers_scanned: scanned,
        dead_containers: scanned - scanned / (group as u64 + 1),
        bucket_moves: scanned - kappa_sum,
    };

    let (order, max_kappa) = canonical_order(&kappa);
    Ok(PeelResult { kappa, order, max_kappa, stats, drain: Some(drain) })
}

/// Canonical order: ids counting-sorted by (κ, id) — deterministic under
/// every schedule and still non-decreasing in κ, which is all Theorem 4
/// consumers rely on. (The sequential engines keep their historical
/// bucket-queue order.)
fn canonical_order(kappa: &[u32]) -> (Vec<u32>, u32) {
    let max_kappa = kappa.iter().copied().max().unwrap_or(0);
    let mut counts = vec![0u32; max_kappa as usize + 2];
    for &k in kappa {
        counts[k as usize + 1] += 1;
    }
    for i in 0..=max_kappa as usize {
        counts[i + 1] += counts[i];
    }
    let mut order = vec![0u32; kappa.len()];
    for (v, &k) in kappa.iter().enumerate() {
        let slot = counts[k as usize];
        counts[k as usize] += 1;
        order[slot as usize] = v as u32;
    }
    (order, max_kappa)
}

/// One worker's life inside the drain scope. Worker 0 is the gate leader:
/// it merges scan results, advances the threshold, seeds the queue, and
/// decides when to finish the tail sequentially.
fn drain_worker<const G: usize>(
    shared: &DrainShared<'_>,
    mut ctl: WorkerControl,
    floor: usize,
) -> DrainStats {
    let w = ctl.id();
    let mut local = DrainStats::default();
    let scan_chunk = 256usize;
    let drain_chunk = 16usize;
    loop {
        // -- SCAN: fused min-find + candidate collect over claimed chunks.
        // A smaller minimum restarts the local collection, so each worker
        // hands the leader (local min, every alive item at that min).
        let mut my_min = u32::MAX;
        let mut my_cands: Vec<u32> = Vec::new();
        loop {
            if shared.cancel_tripped() {
                return local;
            }
            let chunk = ctl.chunk(scan_chunk);
            let Some(r) = shared.scan.claim(chunk) else { break };
            ctl.on(DrainEvent::Claim);
            local.chunks_claimed += 1;
            for i in r {
                if shared.kappa[i].load(Ordering::Relaxed) != u32::MAX {
                    continue;
                }
                let d = shared.deg[i].load(Ordering::Relaxed);
                if d < my_min {
                    my_min = d;
                    my_cands.clear();
                }
                if d == my_min {
                    my_cands.push(i as u32);
                }
            }
        }
        *shared.slots[w].lock().expect("scan slot") = (my_min, my_cands);

        // -- GATE: leader merges, advances the threshold, seeds the queue.
        ctl.on(DrainEvent::Phase);
        if w == 0 {
            if !shared.gate.await_followers() {
                break;
            }
            let mut k = u32::MAX;
            for slot in &shared.slots {
                k = k.min(slot.lock().expect("scan slot").0);
            }
            if k == u32::MAX {
                // No alive item anywhere: the peel is complete.
                shared.done.store(true, Ordering::Relaxed);
                shared.gate.advance();
                break;
            }
            let alive = shared.flat.num_cliques() - shared.queue.pushed();
            if alive <= floor {
                // Contended tail: cheaper to finish inline than to keep
                // paying claim traffic for a handful of items. Probe the
                // token first so a trip never pays for the whole tail.
                if shared.cancel_tripped() {
                    break;
                }
                local.epilogue_items += sequential_drain::<G>(shared) as u64;
                shared.done.store(true, Ordering::Relaxed);
                shared.gate.advance();
                break;
            }
            shared.threshold.store(k, Ordering::Relaxed);
            for slot in &shared.slots {
                let (m, cands) = &mut *slot.lock().expect("scan slot");
                if *m == k {
                    for &v in cands.iter() {
                        // Issue before publish: the quiescence counter must
                        // never observe retired == issued while this item
                        // is still invisible to it.
                        shared.quiesce.issue(1);
                        shared.queue.push(v, w as u32);
                    }
                }
                cands.clear();
            }
            shared.scan.reset();
            shared.gate.advance();
        } else if !shared.gate.arrive_and_wait() {
            break;
        }
        if shared.done.load(Ordering::Relaxed) {
            break;
        }
        let k = shared.threshold.load(Ordering::Relaxed);

        // -- DRAIN: continuous chunked claims, no barrier until quiescent.
        loop {
            if shared.cancel_tripped() {
                return local;
            }
            let chunk = ctl.chunk(drain_chunk);
            match shared.queue.claim(chunk) {
                Some(r) => {
                    ctl.on(DrainEvent::Claim);
                    local.chunks_claimed += 1;
                    for slot in r {
                        let Some((v, owner)) = shared.queue.read(slot, shared.gate.abort_flag())
                        else {
                            return local; // poisoned mid-publish
                        };
                        if owner as usize != w {
                            local.steals += 1;
                        }
                        ctl.on(DrainEvent::Item);
                        process_item::<G>(shared, v as usize, k, w as u32, &mut local, &mut ctl);
                        shared.quiesce.retire(1);
                    }
                }
                None => {
                    if shared.quiesce.quiescent() {
                        break;
                    }
                    if shared.gate.poisoned() {
                        return local;
                    }
                    std::thread::yield_now();
                }
            }
        }

        // -- GATE: regroup for the next threshold scan.
        ctl.on(DrainEvent::Phase);
        if w == 0 {
            if !shared.gate.await_followers() {
                break;
            }
            shared.gate.advance();
        } else if !shared.gate.arrive_and_wait() {
            break;
        }
    }
    local
}

/// Peels `v` at threshold `k`: fixes κ, then kills each of `v`'s still-live
/// containers exactly once (canonical-key claim for `group ≥ 2`) and
/// applies floored CAS decrements to the surviving members. The unique CAS
/// that lands a `k+1 → k` crossing owns that member's single push.
#[inline]
fn process_item<const G: usize>(
    shared: &DrainShared<'_>,
    v: usize,
    k: u32,
    w: u32,
    local: &mut DrainStats,
    ctl: &mut WorkerControl,
) {
    let group = if G > 0 { G } else { shared.flat.group().max(1) };
    shared.kappa[v].store(k, Ordering::Relaxed);
    let base = shared.flat.container_units(v).start;
    let row = shared.flat.containers(v);
    for (ci, c) in row.chunks_exact(group).enumerate() {
        if G != 1 {
            // Exactly-once kill: all group+1 member rows alias this
            // container to one canonical key; the bitmap's first setter
            // owns the kill, everyone else sees it dead. Without this,
            // two same-threshold members racing could decrement a third
            // member twice (or not at all) and corrupt its κ.
            if shared.claimed.set(shared.keys[base + ci] as usize) {
                continue;
            }
        }
        for &o in c {
            let o = o as usize;
            if shared.kappa[o].load(Ordering::Relaxed) != u32::MAX {
                continue; // peeled: κ fixed, stale decrement would be lost anyway
            }
            // Floored CAS: never below the current threshold. A stale
            // `cur` read just retries; the floor and the κ-check above
            // are what make every stale read harmless.
            let mut cur = shared.deg[o].load(Ordering::Relaxed);
            while cur > k {
                match shared.deg[o].compare_exchange_weak(
                    cur,
                    cur - 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        if cur == k + 1 {
                            ctl.on(DrainEvent::Push);
                            shared.quiesce.issue(1);
                            shared.queue.push(o as u32, w);
                        }
                        break;
                    }
                    Err(now) => {
                        local.stale_retries += 1;
                        cur = now;
                    }
                }
            }
        }
    }
}

/// Sequentially peels every still-alive item in `shared`, in threshold
/// order, with a local FIFO in place of the shared queue (no claim
/// traffic) but the same degree/κ/claim state — the identical algorithm,
/// so the handoff from any parallel prefix is seamless and the result is
/// the proof target every schedule must match. Returns items peeled here.
fn sequential_drain<const G: usize>(shared: &DrainShared<'_>) -> usize {
    let n = shared.flat.num_cliques();
    let mut peeled = 0usize;
    let mut fifo: Vec<u32> = Vec::new();
    loop {
        // Fused scan: minimum alive degree and its candidates.
        let mut k = u32::MAX;
        fifo.clear();
        for i in 0..n {
            if shared.kappa[i].load(Ordering::Relaxed) != u32::MAX {
                continue;
            }
            let d = shared.deg[i].load(Ordering::Relaxed);
            if d < k {
                k = d;
                fifo.clear();
            }
            if d == k {
                fifo.push(i as u32);
            }
        }
        if k == u32::MAX {
            return peeled;
        }
        // Drain the threshold: crossings append to the same FIFO.
        let mut at = 0usize;
        while at < fifo.len() {
            let v = fifo[at] as usize;
            at += 1;
            shared.kappa[v].store(k, Ordering::Relaxed);
            peeled += 1;
            let group = if G > 0 { G } else { shared.flat.group().max(1) };
            let base = shared.flat.container_units(v).start;
            let row = shared.flat.containers(v);
            for (ci, c) in row.chunks_exact(group).enumerate() {
                if G != 1 && shared.claimed.set(shared.keys[base + ci] as usize) {
                    continue;
                }
                for &o in c {
                    let o = o as usize;
                    if shared.kappa[o].load(Ordering::Relaxed) != u32::MAX {
                        continue;
                    }
                    let d = shared.deg[o].load(Ordering::Relaxed);
                    if d > k {
                        shared.deg[o].store(d - 1, Ordering::Relaxed);
                        if d == k + 1 {
                            fifo.push(o as u32);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{CachedSpace, CoreSpace, GenericSpace, Nucleus34Space, TrussSpace};
    use hdsd_graph::graph_from_edges;

    fn complete(n: u32) -> hdsd_graph::CsrGraph {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        graph_from_edges(edges)
    }

    /// The paper's Figure 2a graph: three nested cores.
    /// A triangle-rich 3-core (clique-ish), a 2-core ring, a 1-core tail.
    fn paper_core_graph() -> hdsd_graph::CsrGraph {
        // 3-core: K4 on {0,1,2,3}; 2-core: cycle {4,5,6} attached to 0;
        // 1-core: path 7-8 hanging off 4.
        graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3), // K4
            (4, 5),
            (5, 6),
            (6, 4),
            (0, 4), // triangle + bridge
            (4, 7),
            (7, 8), // tail
        ])
    }

    #[test]
    fn core_peeling_on_nested_graph() {
        let g = paper_core_graph();
        let sp = CoreSpace::new(&g);
        let r = peel(&sp);
        assert_eq!(&r.kappa[0..4], &[3, 3, 3, 3]);
        assert_eq!(&r.kappa[4..7], &[2, 2, 2]);
        assert_eq!(&r.kappa[7..9], &[1, 1]);
        assert_eq!(r.max_kappa, 3);
    }

    #[test]
    fn order_is_nondecreasing_kappa() {
        let g = paper_core_graph();
        let sp = CoreSpace::new(&g);
        let r = peel(&sp);
        let ks: Vec<u32> = r.order.iter().map(|&i| r.kappa[i as usize]).collect();
        assert!(ks.windows(2).all(|w| w[0] <= w[1]), "order {ks:?}");
    }

    #[test]
    fn truss_peeling_on_complete_graphs() {
        for n in 3..8u32 {
            let g = complete(n);
            let sp = TrussSpace::precomputed(&g);
            let r = peel(&sp);
            // Every edge of K_n is in exactly n−2 triangles and the whole
            // graph is the maximal truss: κ3 = n−2 everywhere.
            assert!(r.kappa.iter().all(|&k| k == n - 2), "K{n}: {:?}", r.kappa);
        }
    }

    #[test]
    fn nucleus34_peeling_on_complete_graphs() {
        for n in 4..8u32 {
            let g = complete(n);
            let sp = Nucleus34Space::precomputed(&g);
            let r = peel(&sp);
            // Every triangle of K_n is in n−3 4-cliques.
            assert!(r.kappa.iter().all(|&k| k == n - 3), "K{n}: {:?}", r.kappa);
        }
    }

    #[test]
    fn truss_peeling_matches_paper_figure3() {
        // Paper Figure 3a: K4 on {a,b,c,d} plus K4 on {c,d,e,f} sharing the
        // edge cd, plus pendant structure g,h. Truss numbers: edges inside
        // each K4 get 2; with the h vertex attached to e,f with one triangle
        // those edges get 1; pendant edges 0.
        // We reproduce the left graph: a=0,b=1,c=2,d=3,e=4,f=5,g=6,h=7.
        let g = graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3), // K4 abcd
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5), // K4 cdef (via cd)
            (4, 6), // pendant g on e
            (4, 7),
            (5, 7), // h triangle with e,f
        ]);
        let sp = TrussSpace::precomputed(&g);
        let r = peel(&sp);
        let k_of = |u: u32, v: u32| r.kappa[g.edge_id(u, v).unwrap() as usize];
        // Edges of K4 abcd are each in 2 triangles within the K4.
        assert_eq!(k_of(0, 1), 2);
        assert_eq!(k_of(2, 3), 2);
        assert_eq!(k_of(4, 5), 2);
        // Pendant edge (4,6): no triangles.
        assert_eq!(k_of(4, 6), 0);
        // h's edges (4,7),(5,7): one triangle {4,5,7}.
        assert_eq!(k_of(4, 7), 1);
        assert_eq!(k_of(5, 7), 1);
    }

    #[test]
    fn generic_matches_specialized_spaces() {
        let g = graph_from_edges([
            (0, 1),
            (0, 2),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 2),
            (1, 3),
            (0, 4),
            (1, 4),
        ]);
        // (1,2)
        let gen12 = GenericSpace::new(&g, 1, 2);
        let core = CoreSpace::new(&g);
        assert_eq!(peel(&gen12).kappa, peel(&core).kappa);
        // (2,3): generic edge ids are lexicographic like CSR edge ids.
        let gen23 = GenericSpace::new(&g, 2, 3);
        let truss = TrussSpace::precomputed(&g);
        let a = peel(&gen23).kappa;
        let b = peel(&truss).kappa;
        // Generic r-cliques for r=2 enumerate in the same (u,v) lexicographic
        // order as CSR edge ids, so results align index-by-index.
        assert_eq!(a, b);
    }

    /// The flat engine is bit-identical to the walk on every space —
    /// κ, order, max κ, and the deterministic work counters.
    #[test]
    fn flat_engine_is_bit_identical_to_walk() {
        let g = hdsd_datasets::holme_kim(120, 4, 0.5, 3);
        let truss = TrussSpace::precomputed(&g);
        let nuc = Nucleus34Space::precomputed(&g);
        let gen13 = GenericSpace::new(&g, 1, 3);
        // group = binom(4,2) − 1 = 5: beyond every monomorphized arity, so
        // this hits the width-at-runtime fallback (`run::<0>`).
        let gen24 = GenericSpace::new(&g, 2, 4);
        let core = CoreSpace::new(&g);

        let mut engine = PeelEngine::new();
        for (walk, flat) in [
            (peel_walk(&truss), FlatContainers::build(&truss)),
            (peel_walk(&nuc), FlatContainers::build(&nuc)),
            (peel_walk(&gen13), FlatContainers::build(&gen13)),
            (peel_walk(&gen24), FlatContainers::build(&gen24)),
            (peel_walk(&core), FlatContainers::build(&core)),
        ] {
            // Both the one-shot form and the engine (scratch reused across
            // differently-sized spaces) must agree with the walk.
            for r in [peel_flat(&flat), engine.peel(&flat)] {
                assert_eq!(r.kappa, walk.kappa);
                assert_eq!(r.order, walk.order);
                assert_eq!(r.max_kappa, walk.max_kappa);
                assert_eq!(r.stats, walk.stats);
            }
        }
    }

    #[test]
    fn peel_dispatch_uses_the_resident_flat_rows() {
        let g = paper_core_graph();
        let truss = TrussSpace::precomputed(&g);
        let cached = CachedSpace::build(&truss);
        // CachedSpace advertises its rows; peel must take the flat path and
        // agree with every other engine.
        assert!(cached.as_flat().is_some());
        let via_cached = peel(&cached);
        let via_space = peel(&truss);
        let via_walk = peel_walk(&truss);
        assert_eq!(via_cached.kappa, via_walk.kappa);
        assert_eq!(via_space.kappa, via_walk.kappa);
        assert_eq!(via_cached.order, via_walk.order);
        assert_eq!(via_cached.stats, via_walk.stats);
    }

    #[test]
    fn stats_count_real_work() {
        let g = paper_core_graph();
        let sp = CoreSpace::new(&g);
        let r = peel(&sp);
        // Every container incidence is visited exactly once: Σ d_S = 2|E|.
        assert_eq!(r.stats.containers_scanned, 2 * g.num_edges() as u64);
        assert!(r.stats.dead_containers > 0);
        assert!(r.stats.bucket_moves > 0);
        // Dead + decremented-or-at-floor partition the incidences.
        assert!(r.stats.dead_containers < r.stats.containers_scanned);
    }

    #[test]
    fn parallel_peel_matches_sequential() {
        let g = paper_core_graph();
        let sp = CoreSpace::new(&g);
        let seq = peel(&sp);
        for threads in [1, 2, 4] {
            let par = peel_parallel(&sp, ParallelConfig::with_threads(threads).chunk(2));
            assert_eq!(par.kappa, seq.kappa, "threads={threads}");
            assert_eq!(par.stats, seq.stats, "threads={threads}");
            assert!(par.drain.is_some(), "parallel runs report drain telemetry");
        }
        let tsp = TrussSpace::precomputed(&g);
        let seq_t = peel(&tsp);
        let par_t = peel_parallel(&tsp, ParallelConfig::with_threads(3).chunk(1));
        assert_eq!(par_t.kappa, seq_t.kappa);
        assert_eq!(par_t.stats, seq_t.stats);
        let flat = FlatContainers::build(&tsp);
        let par_flat = peel_parallel_flat(&flat, ParallelConfig::with_threads(3).chunk(1));
        assert_eq!(par_flat.kappa, seq_t.kappa);
    }

    #[test]
    fn parallel_counters_are_deterministic_across_thread_counts() {
        // Large enough that the drain runs real parallel phases before the
        // epilogue floor kicks in (floor = n/8 clamped to [32, 2048]).
        let g = hdsd_datasets::holme_kim(600, 4, 0.5, 9);
        let sp = TrussSpace::precomputed(&g);
        let seq = peel(&sp);
        let one = peel_parallel(&sp, ParallelConfig::with_threads(1).chunk(8));
        assert_eq!(one.kappa, seq.kappa);
        assert_eq!(one.stats, seq.stats, "closed-form stats must match the bucket queue");
        for threads in [2, 4] {
            let par = peel_parallel(&sp, ParallelConfig::with_threads(threads).chunk(8));
            assert_eq!(par.kappa, one.kappa);
            assert_eq!(par.order, one.order, "canonical order is schedule-independent");
            assert_eq!(par.stats, one.stats, "threads={threads}");
        }
    }

    #[test]
    fn parallel_order_is_canonical_by_kappa_then_id() {
        let g = hdsd_datasets::holme_kim(300, 4, 0.5, 11);
        let sp = TrussSpace::precomputed(&g);
        let par = peel_parallel(&sp, ParallelConfig::with_threads(4).chunk(8));
        assert_eq!(par.order.len(), par.kappa.len());
        for w in par.order.windows(2) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            let ka = par.kappa[a];
            let kb = par.kappa[b];
            assert!(ka < kb || (ka == kb && w[0] < w[1]), "order must sort by (κ, id)");
        }
    }

    #[test]
    fn parallel_worker_panic_is_contained_and_propagated() {
        use hdsd_parallel::{DrainHooks, ScheduleJitter};
        let g = hdsd_datasets::holme_kim(600, 4, 0.5, 13);
        let sp = TrussSpace::precomputed(&g);
        let flat = FlatContainers::build(&sp);
        let ctl = DrainControl {
            jitter: Some(ScheduleJitter::new(1)),
            hooks: DrainHooks::with(|worker, event| {
                if worker == 1 && event == DrainEvent::Item {
                    panic!("injected worker poison");
                }
            }),
        };
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            peel_parallel_flat_with(&flat, ParallelConfig::with_threads(4).chunk(4), &ctl)
        }));
        let err = out.expect_err("the injected panic must propagate to the caller");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("injected worker poison"), "panic payload survives: {msg:?}");
        // The team must not deadlock or corrupt later runs: a clean peel on
        // fresh state still matches sequential.
        let fresh = FlatContainers::build(&sp);
        let par = peel_parallel_flat(&fresh, ParallelConfig::with_threads(4).chunk(4));
        assert_eq!(par.kappa, peel(&sp).kappa);
    }

    #[test]
    fn empty_space() {
        let g = graph_from_edges([]);
        let sp = CoreSpace::new(&g);
        let r = peel(&sp);
        assert!(r.kappa.is_empty());
        assert_eq!(r.max_kappa, 0);
        assert_eq!(r.stats, PeelStats::default());
        let flat = FlatContainers::build(&sp);
        assert!(peel_flat(&flat).kappa.is_empty());
    }

    #[test]
    fn isolated_vertices_get_zero() {
        let g = hdsd_graph::GraphBuilder::new().with_num_vertices(5).edges([(0, 1)]).build();
        let sp = CoreSpace::new(&g);
        let r = peel(&sp);
        assert_eq!(r.kappa, vec![1, 1, 0, 0, 0]);
        assert_eq!(peel_flat(&FlatContainers::build(&sp)).kappa, r.kappa);
    }

    #[test]
    fn sequential_cancel_overshoot_is_exactly_one_chunk() {
        // 3000 items, checks at i = 0, 1024, 2048: a token tripping on its
        // third check stops with exactly (3-1)·PEEL_CANCEL_CHUNK processed.
        let g = hdsd_datasets::holme_kim(3000, 4, 0.5, 7);
        let sp = CoreSpace::new(&g);
        let flat = FlatContainers::build(&sp);
        let err = PeelEngine::new()
            .peel_within(&flat, &CancelToken::tripping_after_checks(3))
            .unwrap_err();
        assert_eq!(err.processed, 2 * PEEL_CANCEL_CHUNK);
        assert_eq!(err.cancelled.stage, "peel drain");
        // An expired deadline trips on the very first check: zero processed,
        // and the wire message keeps the pinned shape.
        let past = std::time::Instant::now() - std::time::Duration::from_millis(1);
        let err = PeelEngine::new()
            .peel_within(&flat, &CancelToken::with_deadline(Some(past)))
            .unwrap_err();
        assert_eq!(err.processed, 0);
        assert_eq!(String::from(err), "deadline exceeded (peel drain)");
        // A generous token changes nothing about the result.
        let far = std::time::Instant::now() + std::time::Duration::from_secs(3600);
        let ok = PeelEngine::new()
            .peel_within(&flat, &CancelToken::with_deadline(Some(far)))
            .expect("generous deadline");
        assert_eq!(ok.kappa, peel(&sp).kappa);
    }

    #[test]
    fn parallel_cancel_aborts_with_partial_progress() {
        let g = hdsd_datasets::holme_kim(3000, 4, 0.5, 19);
        let sp = CoreSpace::new(&g);
        let flat = FlatContainers::build(&sp);
        let n = flat.num_cliques();
        let cfg = ParallelConfig::with_threads(4).chunk(4);
        // Tripped flag: every worker exits before claiming a chunk.
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let err = peel_parallel_flat_within(
            &flat,
            cfg,
            &DrainControl::default(),
            &CancelToken::with_flag(flag),
        )
        .unwrap_err();
        assert!(err.processed < n, "trip before any claim peels nothing: {}", err.processed);
        assert_eq!(String::from(err), "request cancelled (peel drain)");
        // Mid-drain trip: bounded partial progress, never the full peel.
        let err = peel_parallel_flat_within(
            &flat,
            cfg,
            &DrainControl::default(),
            &CancelToken::tripping_after_checks(40),
        )
        .unwrap_err();
        assert!(err.processed < n, "cancelled drain must not finish: {}", err.processed);
        // A generous token is bit-identical to the uncancellable drain.
        let far = std::time::Instant::now() + std::time::Duration::from_secs(3600);
        let ok = peel_parallel_flat_within(
            &flat,
            cfg,
            &DrainControl::default(),
            &CancelToken::with_deadline(Some(far)),
        )
        .expect("generous deadline");
        assert_eq!(ok.kappa, peel(&sp).kappa);
    }
}
