//! The peeling baseline (the paper's Algorithm 1).
//!
//! [`peel`] is the exact, sequential, bucket-queue algorithm — the
//! generalization of Batagelj–Zaveršnik `O(|E|)` k-core peeling to any
//! (r, s) space. It is the ground truth every local algorithm is verified
//! against, and the baseline every benchmark compares with.
//!
//! [`peel_parallel`] is the "partially parallel peeling" comparator of the
//! paper's Figure 1b: levels are discovered sequentially (that dependency
//! is inherent to peeling — the paper's core argument), while the
//! decrement work inside a level runs in parallel.

use hdsd_parallel::{parallel_for_chunks, ParallelConfig};
use std::sync::atomic::{AtomicU32, Ordering};

use crate::space::CliqueSpace;

/// Output of a peeling run.
#[derive(Clone, Debug)]
pub struct PeelResult {
    /// Exact κ index per r-clique.
    pub kappa: Vec<u32>,
    /// r-clique ids in processing (non-decreasing κ) order.
    pub order: Vec<u32>,
    /// Maximum κ.
    pub max_kappa: u32,
}

/// Exact sequential peeling over any clique space (Algorithm 1).
pub fn peel<S: CliqueSpace>(space: &S) -> PeelResult {
    let n = space.num_cliques();
    if n == 0 {
        return PeelResult { kappa: Vec::new(), order: Vec::new(), max_kappa: 0 };
    }
    let mut deg = space.initial_degrees();
    let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;

    // Bucket queue over degree values (positions sorted by current degree).
    let mut bucket_start = vec![0usize; max_deg + 2];
    for &d in &deg {
        bucket_start[d as usize + 1] += 1;
    }
    for i in 0..=max_deg {
        bucket_start[i + 1] += bucket_start[i];
    }
    let mut pos_of = vec![0usize; n];
    let mut item_at = vec![0usize; n];
    {
        let mut cursor = bucket_start.clone();
        for (v, &d) in deg.iter().enumerate() {
            pos_of[v] = cursor[d as usize];
            item_at[cursor[d as usize]] = v;
            cursor[d as usize] += 1;
        }
    }

    let mut processed = vec![false; n];
    let mut kappa = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    let mut max_kappa = 0u32;

    for i in 0..n {
        let v = item_at[i];
        processed[v] = true;
        let kv = deg[v];
        kappa[v] = kv;
        max_kappa = max_kappa.max(kv);
        order.push(v as u32);

        space.for_each_container(v, |others| {
            // Algorithm 1: if any r-clique of this s-clique was already
            // processed, the s-clique is gone; skip.
            if others.iter().any(|&o| processed[o]) {
                return;
            }
            for &o in others {
                if deg[o] > kv {
                    // Move o to the front of its bucket, then decrement.
                    let d = deg[o] as usize;
                    let front = bucket_start[d].max(i + 1);
                    let po = pos_of[o];
                    if po != front {
                        let other_item = item_at[front];
                        item_at.swap(po, front);
                        pos_of[other_item] = po;
                        pos_of[o] = front;
                    }
                    bucket_start[d] = front + 1;
                    deg[o] -= 1;
                }
            }
        });
    }

    PeelResult { kappa, order, max_kappa }
}

/// Partially parallel peeling: sequential level discovery, parallel
/// decrements inside each level (the Figure 1b baseline).
///
/// A full `O(|R|)` scan happens only when the threshold `k` increases
/// (≤ `max κ + 1` times); within a threshold, the next frontier is
/// collected from the decrement pass itself (the CAS transition onto `k`
/// detects each crossing exactly once).
pub fn peel_parallel<S: CliqueSpace>(space: &S, cfg: ParallelConfig) -> PeelResult {
    let n = space.num_cliques();
    if n == 0 {
        return PeelResult { kappa: Vec::new(), order: Vec::new(), max_kappa: 0 };
    }
    let deg: Vec<AtomicU32> = space.initial_degrees().into_iter().map(AtomicU32::new).collect();
    // round[i] = batch in which i was peeled (u32::MAX = still alive).
    let round: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let mut kappa = vec![0u32; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut remaining = n;
    let mut k = 0u32;
    let mut current_round = 0u32;
    let mut frontier: Vec<usize> = Vec::new();
    let mut max_kappa = 0u32;
    // Items whose degree crossed down onto `k` during the decrement pass.
    let crossed = std::sync::Mutex::new(Vec::<usize>::new());

    while remaining > 0 {
        if frontier.is_empty() {
            // Threshold exhausted: find the next minimum degree (>= k).
            let mut min_deg = u32::MAX;
            for i in 0..n {
                if round[i].load(Ordering::Relaxed) == u32::MAX {
                    min_deg = min_deg.min(deg[i].load(Ordering::Relaxed));
                }
            }
            debug_assert!(min_deg >= k || k == 0);
            k = k.max(min_deg);
            for i in 0..n {
                if round[i].load(Ordering::Relaxed) == u32::MAX
                    && deg[i].load(Ordering::Relaxed) <= k
                {
                    frontier.push(i);
                }
            }
        }
        debug_assert!(!frontier.is_empty());
        for &i in &frontier {
            round[i].store(current_round, Ordering::Relaxed);
            kappa[i] = k;
            order.push(i as u32);
        }
        max_kappa = max_kappa.max(k);
        remaining -= frontier.len();

        // Parallel decrement pass over the frontier.
        let frontier_ref = &frontier;
        let deg_ref = &deg;
        let round_ref = &round;
        let crossed_ref = &crossed;
        parallel_for_chunks(frontier.len(), cfg, |range| {
            let mut local_crossed: Vec<usize> = Vec::new();
            for fi in range.clone() {
                let v = frontier_ref[fi];
                space.for_each_container(v, |others| {
                    // Container dead if any member peeled in an earlier round.
                    let mut alive_others = true;
                    let mut min_same_round = v;
                    for &o in others {
                        let r = round_ref[o].load(Ordering::Relaxed);
                        if r < current_round {
                            alive_others = false;
                            break;
                        }
                        if r == current_round && o < min_same_round {
                            min_same_round = o;
                        }
                    }
                    if !alive_others {
                        return;
                    }
                    // Same-round members would double-count the container;
                    // only the lowest-id same-round member executes it.
                    if min_same_round != v {
                        return;
                    }
                    for &o in others {
                        if round_ref[o].load(Ordering::Relaxed) != u32::MAX {
                            continue; // peeled this round: κ already fixed
                        }
                        // CAS loop: decrement but never below k. Whoever
                        // lands the k+1 -> k transition owns the crossing.
                        let mut cur = deg_ref[o].load(Ordering::Relaxed);
                        while cur > k {
                            match deg_ref[o].compare_exchange_weak(
                                cur,
                                cur - 1,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            ) {
                                Ok(_) => {
                                    if cur == k + 1 {
                                        local_crossed.push(o);
                                    }
                                    break;
                                }
                                Err(now) => cur = now,
                            }
                        }
                    }
                });
            }
            if !local_crossed.is_empty() {
                crossed_ref.lock().unwrap().append(&mut local_crossed);
            }
        });
        current_round += 1;

        // Next frontier at the same threshold: the crossings (still alive,
        // deduped — an item crosses at most once, but guard anyway).
        frontier.clear();
        let mut crossed_items = std::mem::take(&mut *crossed.lock().unwrap());
        crossed_items.sort_unstable();
        crossed_items.dedup();
        frontier.extend(
            crossed_items.into_iter().filter(|&i| round[i].load(Ordering::Relaxed) == u32::MAX),
        );
    }

    PeelResult { kappa, order, max_kappa }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{CoreSpace, GenericSpace, Nucleus34Space, TrussSpace};
    use hdsd_graph::graph_from_edges;

    fn complete(n: u32) -> hdsd_graph::CsrGraph {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        graph_from_edges(edges)
    }

    /// The paper's Figure 2a graph: three nested cores.
    /// A triangle-rich 3-core (clique-ish), a 2-core ring, a 1-core tail.
    fn paper_core_graph() -> hdsd_graph::CsrGraph {
        // 3-core: K4 on {0,1,2,3}; 2-core: cycle {4,5,6} attached to 0;
        // 1-core: path 7-8 hanging off 4.
        graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3), // K4
            (4, 5),
            (5, 6),
            (6, 4),
            (0, 4), // triangle + bridge
            (4, 7),
            (7, 8), // tail
        ])
    }

    #[test]
    fn core_peeling_on_nested_graph() {
        let g = paper_core_graph();
        let sp = CoreSpace::new(&g);
        let r = peel(&sp);
        assert_eq!(&r.kappa[0..4], &[3, 3, 3, 3]);
        assert_eq!(&r.kappa[4..7], &[2, 2, 2]);
        assert_eq!(&r.kappa[7..9], &[1, 1]);
        assert_eq!(r.max_kappa, 3);
    }

    #[test]
    fn order_is_nondecreasing_kappa() {
        let g = paper_core_graph();
        let sp = CoreSpace::new(&g);
        let r = peel(&sp);
        let ks: Vec<u32> = r.order.iter().map(|&i| r.kappa[i as usize]).collect();
        assert!(ks.windows(2).all(|w| w[0] <= w[1]), "order {ks:?}");
    }

    #[test]
    fn truss_peeling_on_complete_graphs() {
        for n in 3..8u32 {
            let g = complete(n);
            let sp = TrussSpace::precomputed(&g);
            let r = peel(&sp);
            // Every edge of K_n is in exactly n−2 triangles and the whole
            // graph is the maximal truss: κ3 = n−2 everywhere.
            assert!(r.kappa.iter().all(|&k| k == n - 2), "K{n}: {:?}", r.kappa);
        }
    }

    #[test]
    fn nucleus34_peeling_on_complete_graphs() {
        for n in 4..8u32 {
            let g = complete(n);
            let sp = Nucleus34Space::precomputed(&g);
            let r = peel(&sp);
            // Every triangle of K_n is in n−3 4-cliques.
            assert!(r.kappa.iter().all(|&k| k == n - 3), "K{n}: {:?}", r.kappa);
        }
    }

    #[test]
    fn truss_peeling_matches_paper_figure3() {
        // Paper Figure 3a: K4 on {a,b,c,d} plus K4 on {c,d,e,f} sharing the
        // edge cd, plus pendant structure g,h. Truss numbers: edges inside
        // each K4 get 2; with the h vertex attached to e,f with one triangle
        // those edges get 1; pendant edges 0.
        // We reproduce the left graph: a=0,b=1,c=2,d=3,e=4,f=5,g=6,h=7.
        let g = graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3), // K4 abcd
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5), // K4 cdef (via cd)
            (4, 6), // pendant g on e
            (4, 7),
            (5, 7), // h triangle with e,f
        ]);
        let sp = TrussSpace::precomputed(&g);
        let r = peel(&sp);
        let k_of = |u: u32, v: u32| r.kappa[g.edge_id(u, v).unwrap() as usize];
        // Edges of K4 abcd are each in 2 triangles within the K4.
        assert_eq!(k_of(0, 1), 2);
        assert_eq!(k_of(2, 3), 2);
        assert_eq!(k_of(4, 5), 2);
        // Pendant edge (4,6): no triangles.
        assert_eq!(k_of(4, 6), 0);
        // h's edges (4,7),(5,7): one triangle {4,5,7}.
        assert_eq!(k_of(4, 7), 1);
        assert_eq!(k_of(5, 7), 1);
    }

    #[test]
    fn generic_matches_specialized_spaces() {
        let g = graph_from_edges([
            (0, 1),
            (0, 2),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 2),
            (1, 3),
            (0, 4),
            (1, 4),
        ]);
        // (1,2)
        let gen12 = GenericSpace::new(&g, 1, 2);
        let core = CoreSpace::new(&g);
        assert_eq!(peel(&gen12).kappa, peel(&core).kappa);
        // (2,3): generic edge ids are lexicographic like CSR edge ids.
        let gen23 = GenericSpace::new(&g, 2, 3);
        let truss = TrussSpace::precomputed(&g);
        let a = peel(&gen23).kappa;
        let b = peel(&truss).kappa;
        // Generic r-cliques for r=2 enumerate in the same (u,v) lexicographic
        // order as CSR edge ids, so results align index-by-index.
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_peel_matches_sequential() {
        let g = paper_core_graph();
        let sp = CoreSpace::new(&g);
        let seq = peel(&sp);
        for threads in [1, 2, 4] {
            let par = peel_parallel(&sp, ParallelConfig::with_threads(threads).chunk(2));
            assert_eq!(par.kappa, seq.kappa, "threads={threads}");
        }
        let tsp = TrussSpace::precomputed(&g);
        let seq_t = peel(&tsp);
        let par_t = peel_parallel(&tsp, ParallelConfig::with_threads(3).chunk(1));
        assert_eq!(par_t.kappa, seq_t.kappa);
    }

    #[test]
    fn empty_space() {
        let g = graph_from_edges([]);
        let sp = CoreSpace::new(&g);
        let r = peel(&sp);
        assert!(r.kappa.is_empty());
        assert_eq!(r.max_kappa, 0);
    }

    #[test]
    fn isolated_vertices_get_zero() {
        let g = hdsd_graph::GraphBuilder::new().with_num_vertices(5).edges([(0, 1)]).build();
        let sp = CoreSpace::new(&g);
        let r = peel(&sp);
        assert_eq!(r.kappa, vec![1, 1, 0, 0, 0]);
    }
}
