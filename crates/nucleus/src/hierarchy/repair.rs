//! Incremental repair of the nucleus forest after an edge batch.
//!
//! PR 3 made every layer of the update path incremental except this one:
//! the serving engine still dropped its forest on each batch and paid a
//! full [`super::build_hierarchy`] — a global s-clique enumeration, a global sort,
//! and a union–find over the whole clique universe — on the next region
//! query. Following Sarıyüce–Pınar's *Fast Hierarchy Construction for
//! Dense Subgraphs* (VLDB 2016) observation that the forest can be
//! assembled from **local component information**, [`repair_hierarchy`]
//! rebuilds only the perturbed region of the forest and grafts the
//! untouched subtrees (the vast majority after a small batch) back intact.
//!
//! ## Why preserved subtrees are exactly reusable
//!
//! Call a (new-id) r-clique **dirty** when the batch may have changed its
//! κ or its container set: batch-created cliques, κ-changed cliques, and
//! cliques in a created/destroyed s-clique, closed one hop through
//! containers (because an s-clique's weight `w(S) = min κ(members)`
//! changes only when a member's κ does, every *clean* clique's containers
//! are unchanged **with unchanged weights**). Let `X` be an old forest
//! node none of whose subtree members is dirty or deleted. Then:
//!
//! * `X`'s component at threshold `k_X` cannot gain members — joining it
//!   needs an s-clique through a member with weight ≥ `k_X`, all such
//!   s-cliques are unchanged, and old-forest maximality bounds the
//!   external ones below `k_X`;
//! * it cannot lose members or restructure internally — member κ and
//!   internal s-cliques (weight ≥ `k_X` automatically) are unchanged.
//!
//! So the subtree rooted at `X` reappears in the post-batch forest
//! verbatim (modulo the positional clique-id remap); only its parent link
//! may differ. The repair therefore: (1) marks perturbed old nodes (own
//! dirty/deleted clique, closed upward to the roots), (2) collapses each
//! maximal preserved subtree into a union–find super-node pre-seeded with
//! its existing root node, (3) re-enumerates only the s-cliques with at
//! least one non-preserved member (each preserved-internal s-clique is
//! redundant under the collapse), and (4) re-runs the same
//! threshold-descending union–find over that bounded region. Wrapping a
//! super-node at a lower threshold grafts the preserved subtree under its
//! new parent; preserved subtrees never merge at their own threshold (the
//! argument above), so their roots survive as-is.
//!
//! Equivalence with a cold rebuild is not taken on faith: the
//! `hierarchy_repair_properties` suite proves canonical-form equality on
//! randomized graphs × batches × spaces (see [`super::canonical`]).

use hdsd_graph::NO_ID;

use super::{ForestBuilder, Hierarchy, HierarchyNode};
use crate::space::CliqueSpace;

/// Telemetry of one repair, for update reports and the bench gate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Maximal untouched subtrees grafted back without reconstruction.
    pub preserved_subtrees: usize,
    /// Old nodes reused verbatim (members of preserved subtrees).
    pub preserved_nodes: usize,
    /// Nodes of the result built by the quotient union–find pass.
    pub rebuilt_nodes: usize,
    /// r-cliques in the dirty set after the one-hop container closure —
    /// except on the `full_rebuild` short-circuit, which bails *before*
    /// paying the closure walk and therefore reports the pre-closure
    /// count. Compare rows across spaces/batches with that caveat.
    pub dirty_cliques: usize,
    /// s-cliques re-enumerated and fed to the union–find (the bounded
    /// region; a cold rebuild scans every s-clique).
    pub scanned_scliques: usize,
    /// True when the repair detected up front that no subtree could
    /// survive (broad shallow forests — e.g. the core space on connected
    /// graphs — perturb every node through the root chain) and degraded
    /// to a cold [`super::build_hierarchy`], skipping the repair bookkeeping.
    pub full_rebuild: bool,
}

/// Repairs `old` (the forest of the pre-batch graph) into the forest of
/// the post-batch `space` with exact new `kappa`, reusing every subtree
/// the batch provably did not perturb.
///
/// `new_to_old` maps post-batch clique ids to pre-batch ids ([`NO_ID`] for
/// batch-created cliques) — the remap `crate::delta` produces.
///
/// ## The `dirty_seed` contract
///
/// `dirty_seed` (new ids) must contain every surviving clique whose
/// **container set** changed (a containing s-clique was created or
/// destroyed). The warm refresh's initially-awake set
/// ([`crate::incremental::RefreshOutcome::perturbed`]) satisfies this by
/// construction. κ-changes are derived internally (the old forest knows
/// every old clique's κ — its owning node's `k`), so callers need not
/// compute them, and batch-created cliques are always dirty regardless of
/// the seed. Over-approximating the seed costs time, never correctness.
///
/// # Panics
/// Panics when `kappa` or `new_to_old` don't match `space`, or when an id
/// in `dirty_seed`/`new_to_old` is out of range.
pub fn repair_hierarchy<S: CliqueSpace>(
    old: &Hierarchy,
    space: &S,
    kappa: &[u32],
    new_to_old: &[u32],
    old_num_cliques: usize,
    dirty_seed: &[u32],
) -> (Hierarchy, RepairStats) {
    hdsd_telemetry::span!("hierarchy.repair");
    let n = space.num_cliques();
    assert_eq!(kappa.len(), n, "kappa length must match clique count");
    assert_eq!(new_to_old.len(), n, "new_to_old length must match clique count");

    // Inverse remap + old clique → owning old node.
    let mut old_to_new = vec![NO_ID; old_num_cliques];
    for (new_id, &o) in new_to_old.iter().enumerate() {
        if o != NO_ID {
            old_to_new[o as usize] = new_id as u32;
        }
    }
    let old_node_of = old.clique_to_node(old_num_cliques);

    // Dirty = seed ∪ batch-created ∪ κ-changed (self-derived: an old
    // clique's κ is its owning node's k, or 0 when it was in no nucleus).
    let mut dirty = vec![false; n];
    for &i in dirty_seed {
        dirty[i as usize] = true;
    }
    for i in 0..n {
        let o = new_to_old[i];
        if o == NO_ID {
            dirty[i] = true;
            continue;
        }
        let old_kappa = match old_node_of[o as usize] {
            u32::MAX => 0,
            node => old.nodes[node as usize].k,
        };
        if old_kappa != kappa[i] {
            dirty[i] = true;
        }
    }

    // Cheap bail-out before any container walk: the one-hop closure below
    // only *adds* dirt, so if this pre-closure dirty set already perturbs
    // every old node, nothing can survive and the repair machinery would
    // be pure overhead on top of a cold build. Broad, shallow forests
    // (the core space on a connected graph routinely has only a handful
    // of nodes) hit this constantly.
    if mark_perturbed(old, &old_to_new, &dirty).iter().all(|&p| p) {
        let forest = super::build_hierarchy(space, kappa);
        let stats = RepairStats {
            rebuilt_nodes: forest.nodes.len(),
            dirty_cliques: dirty.iter().filter(|&&d| d).count(),
            full_rebuild: true,
            ..RepairStats::default()
        };
        return (forest, stats);
    }

    // Close one hop through containers so every s-clique with a
    // possibly-changed weight has only dirty members.
    let direct: Vec<usize> = (0..n).filter(|&i| dirty[i]).collect();
    for &i in &direct {
        space.for_each_neighbor(i, |o| dirty[o] = true);
    }
    let dirty_cliques = dirty.iter().filter(|&&d| d).count();

    let perturbed = mark_perturbed(old, &old_to_new, &dirty);
    let preserved_nodes = perturbed.iter().filter(|&&p| !p).count();

    // Copy the old arena: preserved nodes verbatim (own_cliques remapped to
    // new ids; preserved-subtree roots detached from their perturbed
    // parents), perturbed nodes as tombstones the finalize step drops.
    let nodes: Vec<HierarchyNode> = old
        .nodes
        .iter()
        .enumerate()
        .map(|(id, node)| {
            if perturbed[id] {
                return HierarchyNode {
                    k: u32::MAX,
                    parent: None,
                    children: Vec::new(),
                    own_cliques: Vec::new(),
                    size: 0,
                };
            }
            HierarchyNode {
                k: node.k,
                parent: node.parent.filter(|&p| !perturbed[p as usize]),
                children: node.children.clone(),
                own_cliques: node.own_cliques.iter().map(|&c| old_to_new[c as usize]).collect(),
                size: node.size,
            }
        })
        .collect();

    let mut fb = ForestBuilder {
        nodes,
        parent: (0..n as u32).collect(),
        node_of: vec![u32::MAX; n],
        activated: vec![false; n],
    };

    // Collapse each maximal preserved subtree into a super-node: all its
    // member cliques union-found to one representative whose component is
    // pre-bound to the subtree's existing root node.
    let mut in_preserved = vec![false; n];
    let mut preserved_subtrees = 0usize;
    let mut walk: Vec<u32> = Vec::new();
    for id in 0..old.nodes.len() {
        let is_sub_root =
            !perturbed[id] && old.nodes[id].parent.is_none_or(|p| perturbed[p as usize]);
        if !is_sub_root {
            continue;
        }
        preserved_subtrees += 1;
        let mut rep = u32::MAX;
        walk.clear();
        walk.push(id as u32);
        while let Some(x) = walk.pop() {
            let node = &fb.nodes[x as usize];
            walk.extend_from_slice(&node.children);
            for own_at in 0..node.own_cliques.len() {
                let m = fb.nodes[x as usize].own_cliques[own_at];
                debug_assert_ne!(m, NO_ID, "preserved subtree owns a deleted clique");
                in_preserved[m as usize] = true;
                fb.activated[m as usize] = true;
                if rep == u32::MAX {
                    rep = m;
                } else {
                    fb.parent[m as usize] = rep;
                }
            }
        }
        debug_assert_ne!(rep, u32::MAX, "preserved subtree has no member cliques");
        fb.node_of[rep as usize] = id as u32;
    }

    // The bounded region: every s-clique with at least one non-preserved
    // member, enumerated once from its minimum non-preserved member.
    // s-cliques internal to one preserved subtree are redundant under the
    // collapse (their members are already unioned and their connectivity
    // is already encoded in the subtree); s-cliques can never span two
    // preserved subtrees without a non-preserved member (maximality of the
    // lower-threshold subtree's component would be violated).
    let mut scliques: Vec<(u32, Vec<u32>)> = Vec::new();
    for i in 0..n {
        if in_preserved[i] {
            continue;
        }
        space.for_each_container(i, |others| {
            if others.iter().any(|&o| !in_preserved[o] && o < i) {
                return;
            }
            let mut members = Vec::with_capacity(others.len() + 1);
            members.push(i as u32);
            members.extend(others.iter().map(|&o| o as u32));
            let w = members.iter().map(|&m| kappa[m as usize]).min().unwrap();
            scliques.push((w, members));
        });
    }
    let scanned_scliques = scliques.len();

    fb.union_find_pass(scliques, kappa);
    let forest = fb.finalize(old.rs);

    let stats = RepairStats {
        preserved_subtrees,
        preserved_nodes,
        rebuilt_nodes: forest.nodes.len() - preserved_nodes,
        dirty_cliques,
        scanned_scliques,
        full_rebuild: false,
    };
    (forest, stats)
}

/// Old nodes whose subtree owns a dirty or deleted clique, closed upward
/// (an ancestor's member set contains every descendant's members). Costs
/// one pass over the old `own_cliques` plus early-terminating parent-chain
/// walks — no container access.
fn mark_perturbed(old: &Hierarchy, old_to_new: &[u32], dirty: &[bool]) -> Vec<bool> {
    let mut perturbed = vec![false; old.nodes.len()];
    for (id, node) in old.nodes.iter().enumerate() {
        let hit = node.own_cliques.iter().any(|&c| {
            let nn = old_to_new[c as usize];
            nn == NO_ID || dirty[nn as usize]
        });
        if hit && !perturbed[id] {
            perturbed[id] = true;
            let mut at = id;
            while let Some(p) = old.nodes[at].parent {
                if perturbed[p as usize] {
                    break;
                }
                perturbed[p as usize] = true;
                at = p as usize;
            }
        }
    }
    perturbed
}

#[cfg(test)]
mod tests {
    use super::super::{assert_forest_eq, build_hierarchy};
    use super::*;
    use crate::peel::peel;
    use crate::space::{CachedSpace, CoreSpace};
    use hdsd_graph::graph_from_edges;

    /// Identity batch: nothing dirty, everything preserved, result equals
    /// the old forest.
    #[test]
    fn noop_repair_preserves_everything() {
        let g = hdsd_datasets::holme_kim(80, 4, 0.5, 3);
        let sp = CachedSpace::build(&CoreSpace::new(&g));
        let kappa = peel(&sp).kappa;
        let h = build_hierarchy(&sp, &kappa);
        let identity: Vec<u32> = (0..sp.num_cliques() as u32).collect();
        let (repaired, stats) = h.repair(&sp, &kappa, &identity, sp.num_cliques(), &[]);
        assert_eq!(stats.rebuilt_nodes, 0, "{stats:?}");
        assert_eq!(stats.scanned_scliques, 0, "{stats:?}");
        assert_eq!(stats.preserved_nodes, h.len());
        assert_forest_eq(&repaired, &h);
        // Byte-for-byte, not just canonical: ids were never disturbed.
        assert_eq!(repaired.nodes, h.nodes);
    }

    /// Everything dirty: degenerates to a cold rebuild.
    #[test]
    fn fully_dirty_repair_matches_cold_build() {
        let g = graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5),
            (5, 6),
        ]);
        let sp = CachedSpace::build(&CoreSpace::new(&g));
        let kappa = peel(&sp).kappa;
        let h = build_hierarchy(&sp, &kappa);
        let identity: Vec<u32> = (0..sp.num_cliques() as u32).collect();
        let all: Vec<u32> = identity.clone();
        let (repaired, stats) = h.repair(&sp, &kappa, &identity, sp.num_cliques(), &all);
        assert_eq!(stats.preserved_subtrees, 0);
        assert_forest_eq(&repaired, &h);
    }

    /// A localized change: the untouched K4's subtree is preserved.
    #[test]
    fn distant_component_is_preserved() {
        // Two far-apart components: a K4 and a triangle-with-tail.
        let edges = [
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3), // K4
            (10, 11),
            (11, 12),
            (12, 10),
            (12, 13), // triangle + tail
        ];
        let g = graph_from_edges(edges);
        let sp = CachedSpace::build(&CoreSpace::new(&g));
        let kappa = peel(&sp).kappa;
        let h = build_hierarchy(&sp, &kappa);

        // Batch: add an edge to the triangle side (13-10 closes a C4).
        let g2 = graph_from_edges(edges.iter().copied().chain([(13, 10)]));
        let sp2 = CachedSpace::build(&CoreSpace::new(&g2));
        let kappa2 = peel(&sp2).kappa;
        let identity: Vec<u32> = (0..sp2.num_cliques() as u32).collect();
        let (repaired, stats) = h.repair(&sp2, &kappa2, &identity, sp.num_cliques(), &[13, 10]);
        assert_forest_eq(&repaired, &build_hierarchy(&sp2, &kappa2));
        assert!(stats.preserved_subtrees >= 1, "K4 subtree should be preserved: {stats:?}");
        assert!(
            stats.scanned_scliques < 10 + 4, // fewer than the full s-clique count
            "repair re-scanned too much: {stats:?}"
        );
    }
}
