//! Nucleus hierarchy: the forest of k-(r,s) nuclei.
//!
//! Every r-clique has its κ index; the **k-(r,s) nuclei** at threshold `k`
//! are the S-connected components of the r-cliques with κ ≥ k, where
//! connectivity passes through s-cliques whose members all have κ ≥ k.
//! Because components only merge as `k` decreases, the nuclei of all
//! thresholds form a forest — the hierarchy in the paper's title (e.g. the
//! topic hierarchy recovered from citation networks in the authors' prior
//! work).
//!
//! Construction processes thresholds in decreasing order with a union–find
//! over r-cliques. The weight of an s-clique is
//! `w(S) = min_{R ⊂ S} κ(R)`: `S` connects its members exactly at
//! thresholds `k ≤ w(S)`. A node is created when a component first appears
//! at a threshold; when components merge at a smaller threshold the old
//! nodes become children of the merged node. Each r-clique `R` is assigned
//! (as an `own_clique`) to the node representing its component at
//! threshold `κ(R)` — the maximal nucleus in which it first participates.

pub mod canonical;
pub mod repair;

pub use canonical::assert_forest_eq;
pub use repair::{repair_hierarchy, RepairStats};

use hdsd_graph::{density, induced_subgraph, CsrGraph, VertexId};

use crate::cancel::{CancelToken, Cancelled};
use crate::space::CliqueSpace;

/// One nucleus in the hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchyNode {
    /// The k of this k-(r,s) nucleus.
    pub k: u32,
    /// Parent node (a nucleus with smaller k containing this one).
    pub parent: Option<u32>,
    /// Children (nuclei with larger k nested inside this one).
    pub children: Vec<u32>,
    /// r-cliques with κ = `k` whose component this node represents.
    /// The full member set adds all descendants' members.
    pub own_cliques: Vec<u32>,
    /// Total r-cliques in this nucleus (own + descendants).
    pub size: usize,
}

/// The forest of all k-(r,s) nuclei of a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hierarchy {
    /// All nuclei. `parent`/`children` links always connect a larger-k
    /// child to a smaller-k parent.
    pub nodes: Vec<HierarchyNode>,
    /// Ids of root nodes (no parent).
    pub roots: Vec<u32>,
    /// The (r, s) of the decomposition.
    pub rs: (usize, usize),
}

impl Hierarchy {
    /// Number of nuclei (nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph had no s-cliques at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All r-cliques of node `id` (own + descendants), sorted.
    pub fn member_cliques(&self, id: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n as usize];
            out.extend_from_slice(&node.own_cliques);
            stack.extend_from_slice(&node.children);
        }
        out.sort_unstable();
        out
    }

    /// Vertex set of node `id`, resolved through the space.
    pub fn member_vertices<S: CliqueSpace>(&self, id: u32, space: &S) -> Vec<VertexId> {
        let mut verts = Vec::new();
        for c in self.member_cliques(id) {
            space.vertices_of(c as usize, &mut verts);
        }
        verts.sort_unstable();
        verts.dedup();
        verts
    }

    /// Density report of node `id`: the induced subgraph over the
    /// nucleus's vertices.
    pub fn node_density<S: CliqueSpace>(
        &self,
        id: u32,
        space: &S,
        graph: &CsrGraph,
    ) -> NucleusDensity {
        let verts = self.member_vertices(id, space);
        let sub = induced_subgraph(graph, &verts);
        NucleusDensity {
            k: self.nodes[id as usize].k,
            vertices: sub.graph.num_vertices(),
            edges: sub.graph.num_edges(),
            density: density(&sub.graph),
        }
    }

    /// Leaves (innermost, densest nuclei).
    pub fn leaves(&self) -> Vec<u32> {
        (0..self.nodes.len() as u32)
            .filter(|&i| self.nodes[i as usize].children.is_empty())
            .collect()
    }

    /// Maximum nesting depth of the forest.
    pub fn depth(&self) -> usize {
        fn rec(h: &Hierarchy, id: u32) -> usize {
            1 + h.nodes[id as usize].children.iter().map(|&c| rec(h, c)).max().unwrap_or(0)
        }
        self.roots.iter().map(|&r| rec(self, r)).max().unwrap_or(0)
    }

    /// Nodes at a given threshold `k` — the maximal k-(r,s) nuclei.
    pub fn nuclei_at(&self, k: u32) -> Vec<u32> {
        (0..self.nodes.len() as u32).filter(|&i| self.nodes[i as usize].k == k).collect()
    }

    /// The inverted clique → node index: for each of `num_cliques`
    /// r-cliques, the node whose `own_cliques` contains it (`u32::MAX` for
    /// cliques in no nucleus). This is the index region queries resolve
    /// through; it is also persisted (and integrity-checked) in snapshots.
    pub fn clique_to_node(&self, num_cliques: usize) -> Vec<u32> {
        let mut node_of = vec![u32::MAX; num_cliques];
        for (id, node) in self.nodes.iter().enumerate() {
            for &c in &node.own_cliques {
                node_of[c as usize] = id as u32;
            }
        }
        node_of
    }

    /// Incrementally repairs this forest after an edge batch — see
    /// [`repair_hierarchy`] for the algorithm and the `dirty_seed`
    /// contract. `self` is the forest of the pre-batch graph; the result is
    /// structurally identical (canonical-form equal) to
    /// [`build_hierarchy`] over the post-batch space.
    pub fn repair<S: CliqueSpace>(
        &self,
        space: &S,
        kappa: &[u32],
        new_to_old: &[u32],
        old_num_cliques: usize,
        dirty_seed: &[u32],
    ) -> (Hierarchy, RepairStats) {
        repair_hierarchy(self, space, kappa, new_to_old, old_num_cliques, dirty_seed)
    }
}

/// Density summary of one nucleus.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NucleusDensity {
    /// Nucleus threshold k.
    pub k: u32,
    /// Vertices in the materialized subgraph.
    pub vertices: usize,
    /// Edges in the materialized subgraph.
    pub edges: usize,
    /// `2|E| / (|V| (|V|−1))`.
    pub density: f64,
}

/// Builds the nucleus forest from exact κ indices (from [`crate::peel()`]
/// or a converged local run).
///
/// r-cliques participating in no s-clique are not part of any nucleus and
/// are omitted.
///
/// # Panics
/// Panics when `kappa.len() != space.num_cliques()`.
pub fn build_hierarchy<S: CliqueSpace>(space: &S, kappa: &[u32]) -> Hierarchy {
    build_hierarchy_within(space, kappa, &CancelToken::none())
        .expect("an unarmed token never cancels")
}

/// [`build_hierarchy`] with cooperative cancellation: the token is
/// checked every [`HIERARCHY_CANCEL_CHUNK`] materialized s-cliques and
/// once per union–find threshold batch, so a tripped deadline aborts the
/// build with bounded overshoot instead of running to completion.
///
/// # Panics
/// Panics when `kappa.len() != space.num_cliques()`.
pub fn build_hierarchy_within<S: CliqueSpace>(
    space: &S,
    kappa: &[u32],
    cancel: &CancelToken,
) -> Result<Hierarchy, Cancelled> {
    let n = space.num_cliques();
    assert_eq!(kappa.len(), n, "kappa length must match clique count");
    let armed = cancel.is_armed();

    // Materialize each s-clique once (from its minimum-id member), with
    // weight w(S) = min κ over members.
    let mut scliques: Vec<(u32, Vec<u32>)> = Vec::new();
    for i in 0..n {
        if armed && i % HIERARCHY_CANCEL_CHUNK == 0 {
            cancel.check("hierarchy s-clique scan")?;
        }
        space.for_each_container(i, |others| {
            if others.iter().any(|&o| o < i) {
                return;
            }
            let mut members = Vec::with_capacity(others.len() + 1);
            members.push(i as u32);
            members.extend(others.iter().map(|&o| o as u32));
            let w = members.iter().map(|&m| kappa[m as usize]).min().unwrap();
            scliques.push((w, members));
        });
    }

    let mut fb = ForestBuilder::fresh(n);
    fb.union_find_pass_within(scliques, kappa, cancel)?;
    Ok(fb.finalize((space.r(), space.s())))
}

/// r-cliques scanned between cancellation checks during hierarchy
/// materialization.
pub const HIERARCHY_CANCEL_CHUNK: usize = 4096;

/// The threshold-descending union–find state shared by [`build_hierarchy`]
/// (which starts from an empty forest) and [`repair_hierarchy`] (which
/// starts pre-seeded with the preserved subtrees of the old forest).
pub(crate) struct ForestBuilder {
    /// Growing node arena; may contain tombstones (`k == u32::MAX`).
    pub(crate) nodes: Vec<HierarchyNode>,
    /// Union–find parent over r-cliques.
    pub(crate) parent: Vec<u32>,
    /// Component root → current node id (`u32::MAX` when none).
    pub(crate) node_of: Vec<u32>,
    /// Cliques already seen by some processed s-clique (or belonging to a
    /// pre-seeded preserved subtree, whose `own_cliques` already exist).
    pub(crate) activated: Vec<bool>,
}

pub(crate) fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        parent[x as usize] = parent[parent[x as usize] as usize];
        x = parent[x as usize];
    }
    x
}

/// Ensures the component rooted at `root` has a node at threshold `k`,
/// wrapping or creating as needed, and returns that node id.
fn node_at_k(nodes: &mut Vec<HierarchyNode>, node_of: &mut [u32], root: u32, k: u32) -> u32 {
    let cur = node_of[root as usize];
    if cur == u32::MAX {
        let id = nodes.len() as u32;
        nodes.push(HierarchyNode {
            k,
            parent: None,
            children: Vec::new(),
            own_cliques: Vec::new(),
            size: 0,
        });
        node_of[root as usize] = id;
        id
    } else if nodes[cur as usize].k > k {
        // Component persists to a smaller threshold: wrap it.
        let id = nodes.len() as u32;
        nodes.push(HierarchyNode {
            k,
            parent: None,
            children: vec![cur],
            own_cliques: Vec::new(),
            size: 0,
        });
        nodes[cur as usize].parent = Some(id);
        node_of[root as usize] = id;
        id
    } else {
        debug_assert_eq!(nodes[cur as usize].k, k, "thresholds processed descending");
        cur
    }
}

impl ForestBuilder {
    /// Empty-forest state over `n` r-cliques (the cold-build start).
    pub(crate) fn fresh(n: usize) -> ForestBuilder {
        ForestBuilder {
            nodes: Vec::new(),
            parent: (0..n as u32).collect(),
            node_of: vec![u32::MAX; n],
            activated: vec![false; n],
        }
    }

    /// Processes `scliques` (weight, member cliques) in descending weight
    /// order, creating/merging nodes and assigning each clique activated at
    /// its own κ to its component's node at that threshold.
    pub(crate) fn union_find_pass(&mut self, scliques: Vec<(u32, Vec<u32>)>, kappa: &[u32]) {
        self.union_find_pass_within(scliques, kappa, &CancelToken::none())
            .expect("an unarmed token never cancels");
    }

    /// [`Self::union_find_pass`] with a cancellation check at the top of
    /// every threshold batch — the natural unit of this pass, so a
    /// tripped token overshoots by at most one batch.
    pub(crate) fn union_find_pass_within(
        &mut self,
        mut scliques: Vec<(u32, Vec<u32>)>,
        kappa: &[u32],
        cancel: &CancelToken,
    ) -> Result<(), Cancelled> {
        let armed = cancel.is_armed();
        scliques.sort_unstable_by_key(|sc| std::cmp::Reverse(sc.0));
        let (nodes, parent) = (&mut self.nodes, &mut self.parent);
        let (node_of, activated) = (&mut self.node_of, &mut self.activated);
        let mut pending: Vec<u32> = Vec::new(); // κ == k cliques activated at this threshold

        let mut idx = 0usize;
        while idx < scliques.len() {
            if armed {
                cancel.check("hierarchy union-find")?;
            }
            let k = scliques[idx].0;
            let mut end = idx;
            while end < scliques.len() && scliques[end].0 == k {
                end += 1;
            }
            pending.clear();
            for (_, members) in &scliques[idx..end] {
                for &m in members {
                    if !activated[m as usize] {
                        activated[m as usize] = true;
                        debug_assert!(kappa[m as usize] >= k);
                        if kappa[m as usize] == k {
                            pending.push(m);
                        }
                    }
                }
                // Union all members; the surviving component's node is the
                // merge of the members' nodes at this threshold.
                let mut it = members.iter();
                let root = find(parent, *it.next().unwrap());
                // Bring the first component to threshold k.
                node_at_k(nodes, node_of, root, k);
                for &m in it {
                    let rm = find(parent, m);
                    if rm == root {
                        continue;
                    }
                    let nb = node_at_k(nodes, node_of, rm, k);
                    let na = node_of[root as usize];
                    // Merge rm into root (both nodes now have threshold k):
                    // absorb nb into na.
                    if na != nb {
                        let mut kids = std::mem::take(&mut nodes[nb as usize].children);
                        for &c in &kids {
                            nodes[c as usize].parent = Some(na);
                        }
                        nodes[na as usize].children.append(&mut kids);
                        let own = std::mem::take(&mut nodes[nb as usize].own_cliques);
                        nodes[na as usize].own_cliques.extend(own);
                        // nb becomes an absorbed tombstone; it is removed at
                        // the compaction step below.
                        nodes[nb as usize].k = u32::MAX;
                        nodes[nb as usize].parent = Some(na);
                    }
                    parent[rm as usize] = root;
                    node_of[rm as usize] = u32::MAX;
                    node_of[root as usize] = na;
                }
            }
            // Every r-clique activated at its own κ belongs to its
            // component's node at this threshold.
            for &m in &pending {
                let root = find(parent, m);
                let node = node_of[root as usize];
                debug_assert_ne!(node, u32::MAX);
                nodes[node as usize].own_cliques.push(m);
            }
            idx = end;
        }
        Ok(())
    }

    /// Compacts tombstones, recomputes roots and sizes, and assembles the
    /// final [`Hierarchy`].
    pub(crate) fn finalize(self, rs: (usize, usize)) -> Hierarchy {
        let nodes = self.nodes;
        // Compact: drop tombstones (k == u32::MAX) and remap ids.
        let mut remap = vec![u32::MAX; nodes.len()];
        let mut compacted: Vec<HierarchyNode> = Vec::with_capacity(nodes.len());
        for (i, node) in nodes.iter().enumerate() {
            if node.k != u32::MAX {
                remap[i] = compacted.len() as u32;
                compacted.push(node.clone());
            }
        }
        for node in &mut compacted {
            node.parent = node.parent.map(|p| {
                debug_assert_ne!(remap[p as usize], u32::MAX, "parent is a tombstone");
                remap[p as usize]
            });
            for c in &mut node.children {
                *c = remap[*c as usize];
            }
        }
        let mut nodes = compacted;

        let roots: Vec<u32> =
            (0..nodes.len() as u32).filter(|&i| nodes[i as usize].parent.is_none()).collect();

        // Sizes bottom-up (iterative post-order: no recursion depth limit).
        for &r in &roots {
            let mut stack: Vec<(u32, usize)> = vec![(r, 0)];
            while let Some((x, child_at)) = stack.pop() {
                let node = &nodes[x as usize];
                if child_at < node.children.len() {
                    let c = node.children[child_at];
                    stack.push((x, child_at + 1));
                    stack.push((c, 0));
                } else {
                    let s = node.own_cliques.len()
                        + node.children.iter().map(|&c| nodes[c as usize].size).sum::<usize>();
                    nodes[x as usize].size = s;
                }
            }
        }

        Hierarchy { nodes, roots, rs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::peel;
    use crate::space::{CoreSpace, Nucleus34Space, TrussSpace};
    use hdsd_graph::graph_from_edges;

    fn nested_core_graph() -> hdsd_graph::CsrGraph {
        // K5 {0..4} bridged to a 2-core triangle {5,6,7}, tail 8-9.
        graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 3),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            (5, 6),
            (6, 7),
            (7, 5),
            (0, 5),
            (5, 8),
            (8, 9),
        ])
    }

    #[test]
    fn core_hierarchy_nests_k5() {
        let g = nested_core_graph();
        let sp = CoreSpace::new(&g);
        let kappa = peel(&sp).kappa;
        let h = build_hierarchy(&sp, &kappa);
        let densest = h.nuclei_at(4);
        assert_eq!(densest.len(), 1, "exactly one 4-core");
        let verts = h.member_vertices(densest[0], &sp);
        assert_eq!(verts, vec![0, 1, 2, 3, 4]);
        let d = h.node_density(densest[0], &sp, &g);
        assert!((d.density - 1.0).abs() < 1e-12, "K5 density");
        // Parent chain k strictly decreases.
        let mut cur = densest[0];
        while let Some(p) = h.nodes[cur as usize].parent {
            assert!(h.nodes[p as usize].k < h.nodes[cur as usize].k);
            cur = p;
        }
    }

    #[test]
    fn separate_nuclei_merge_only_at_lower_k() {
        // Two K4s joined through a degree-2 connector vertex 8:
        // the 3-cores are separate; the 2-core is the whole graph.
        let g = graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3), // K4 A
            (4, 5),
            (4, 6),
            (4, 7),
            (5, 6),
            (5, 7),
            (6, 7), // K4 B
            (3, 8),
            (8, 4), // connector
        ]);
        let sp = CoreSpace::new(&g);
        let kappa = peel(&sp).kappa;
        assert_eq!(kappa[8], 2);
        let h = build_hierarchy(&sp, &kappa);
        let k3 = h.nuclei_at(3);
        assert_eq!(k3.len(), 2, "two disjoint 3-cores");
        let k2 = h.nuclei_at(2);
        assert_eq!(k2.len(), 1, "one 2-core containing everything");
        let root = k2[0];
        assert!(h.roots.contains(&root));
        assert_eq!(h.member_vertices(root, &sp).len(), 9);
        assert_eq!(h.nodes[root as usize].own_cliques, vec![8]);
        // Both 3-cores are children of the 2-core.
        for id in k3 {
            assert_eq!(h.nodes[id as usize].parent, Some(root));
            assert_eq!(h.nodes[id as usize].size, 4);
        }
    }

    #[test]
    fn bridged_double_k4_is_single_3core() {
        // With a direct bridge edge the union *is* one 3-core (every vertex
        // keeps degree ≥ 3), so the hierarchy must report a single nucleus.
        let g = graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (4, 5),
            (4, 6),
            (4, 7),
            (5, 6),
            (5, 7),
            (6, 7),
            (3, 4),
        ]);
        let sp = CoreSpace::new(&g);
        let kappa = peel(&sp).kappa;
        assert!(kappa.iter().all(|&k| k == 3));
        let h = build_hierarchy(&sp, &kappa);
        assert_eq!(h.nuclei_at(3).len(), 1);
        assert_eq!(h.len(), 1);
        assert_eq!(h.nodes[0].size, 8);
    }

    #[test]
    fn paper_fig3b_34_nuclei_not_merged() {
        // The paper's Figure 3: two 1-(3,4) nuclei — K4 {a,b,c,d} and the
        // subgraph on {c,d,e,f,h} (union of K4s cdef and cefh) — share the
        // edge (c,d) but no 4-clique contains triangles from both, so they
        // are reported separately. a=0, b=1, c=2, d=3, e=4, f=5, h=7
        // (g=6 pendant on e).
        let g = graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3), // K4 abcd
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5), // K4 cdef
            (4, 6), // pendant g-e
            (2, 7),
            (4, 7),
            (5, 7), // h adjacent to c,e,f => K4 cefh
        ]);
        let sp = Nucleus34Space::precomputed(&g);
        let kappa = peel(&sp).kappa;
        let h = build_hierarchy(&sp, &kappa);
        let ones = h.nuclei_at(1);
        assert_eq!(ones.len(), 2, "two separate 1-(3,4) nuclei");
        let mut vertex_sets: Vec<Vec<u32>> =
            ones.iter().map(|&id| h.member_vertices(id, &sp)).collect();
        vertex_sets.sort();
        assert_eq!(vertex_sets[0], vec![0, 1, 2, 3]);
        assert_eq!(vertex_sets[1], vec![2, 3, 4, 5, 7]);
    }

    #[test]
    fn every_positive_kappa_clique_appears_exactly_once() {
        let g = hdsd_datasets::holme_kim(150, 4, 0.6, 3);
        let sp = CoreSpace::new(&g);
        let kappa = peel(&sp).kappa;
        let h = build_hierarchy(&sp, &kappa);
        let mut seen = vec![0usize; sp.num_cliques()];
        for n in &h.nodes {
            for &c in &n.own_cliques {
                seen[c as usize] += 1;
            }
        }
        for (i, &s) in seen.iter().enumerate() {
            if sp.degree(i) > 0 {
                assert_eq!(s, 1, "clique {i} appears {s} times");
            } else {
                assert_eq!(s, 0, "isolated clique {i} must not appear");
            }
        }
        let total: usize = h.roots.iter().map(|&r| h.nodes[r as usize].size).sum();
        let expected = (0..sp.num_cliques()).filter(|&i| sp.degree(i) > 0).count();
        assert_eq!(total, expected);
    }

    #[test]
    fn hierarchy_structure_invariants() {
        let g = hdsd_datasets::planted_partition(&[15, 15, 15], 0.6, 0.05, 8);
        for use_truss in [false, true] {
            let (h, n_cliques) = if use_truss {
                let sp = TrussSpace::precomputed(&g);
                let kappa = peel(&sp).kappa;
                (build_hierarchy(&sp, &kappa), sp.num_cliques())
            } else {
                let sp = CoreSpace::new(&g);
                let kappa = peel(&sp).kappa;
                (build_hierarchy(&sp, &kappa), sp.num_cliques())
            };
            let _ = n_cliques;
            for (i, node) in h.nodes.iter().enumerate() {
                assert_ne!(node.k, u32::MAX, "tombstone survived compaction");
                if let Some(p) = node.parent {
                    assert!(h.nodes[p as usize].k < node.k, "node {i}");
                    assert!(h.nodes[p as usize].children.contains(&(i as u32)));
                }
                for &c in &node.children {
                    assert_eq!(h.nodes[c as usize].parent, Some(i as u32));
                }
            }
            // Roots cover all nodes exactly once.
            let mut visited = vec![false; h.len()];
            let mut stack: Vec<u32> = h.roots.clone();
            while let Some(x) = stack.pop() {
                assert!(!visited[x as usize], "cycle or shared child");
                visited[x as usize] = true;
                stack.extend_from_slice(&h.nodes[x as usize].children);
            }
            assert!(visited.iter().all(|&v| v));
        }
    }

    #[test]
    fn densities_increase_toward_leaves() {
        let g = hdsd_datasets::nested_communities(
            8,
            &[
                hdsd_datasets::NestedCommunitySpec { branching: 2, p: 0.25 },
                hdsd_datasets::NestedCommunitySpec { branching: 2, p: 0.9 },
            ],
            0.02,
            17,
        );
        let sp = CoreSpace::new(&g);
        let kappa = peel(&sp).kappa;
        let h = build_hierarchy(&sp, &kappa);
        // Along any root-to-leaf chain, density is (weakly) increasing in
        // most steps; we check the aggregate: max leaf density exceeds the
        // root density.
        let root_d = h.node_density(h.roots[0], &sp, &g).density;
        let best_leaf =
            h.leaves().iter().map(|&l| h.node_density(l, &sp, &g).density).fold(0.0f64, f64::max);
        assert!(best_leaf >= root_d, "leaf density {best_leaf} < root density {root_d}");
    }

    #[test]
    fn empty_graph_hierarchy() {
        let g = graph_from_edges([]);
        let sp = CoreSpace::new(&g);
        let h = build_hierarchy(&sp, &[]);
        assert!(h.is_empty());
        assert_eq!(h.depth(), 0);
    }
}
