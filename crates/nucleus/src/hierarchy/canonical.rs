//! Canonical forms for forest equivalence.
//!
//! Two [`Hierarchy`] values built by different routes (cold
//! [`super::build_hierarchy`] vs [`super::repair_hierarchy`], or two cold
//! builds over differently-ordered s-clique streams) represent the same
//! forest but differ in node numbering and in the order of `children` /
//! `own_cliques` / `roots` — all artifacts of construction order. Node ids
//! are renumbering-dependent, so `==` on the raw structs is meaningless
//! across routes. [`Hierarchy::canonical`] quotients those artifacts away:
//!
//! * `own_cliques` and `roots`/`children` orders are sorted;
//! * siblings are ordered by their subtree's minimum member clique (member
//!   sets of sibling subtrees are disjoint, so the key is a total order);
//! * nodes are renumbered by a DFS preorder over the sorted roots.
//!
//! After canonicalization, structural identity **is** `==` — which is what
//! [`assert_forest_eq`] checks, with a first-difference diagnostic for the
//! property suites.

use super::{Hierarchy, HierarchyNode};

impl Hierarchy {
    /// The canonical form: same forest, construction-order artifacts
    /// removed (see the module docs). Idempotent; two hierarchies are
    /// structurally equivalent iff their canonical forms are `==`.
    pub fn canonical(&self) -> Hierarchy {
        let n = self.nodes.len();
        // Subtree sort key: the minimum member clique id of the subtree
        // (disjoint across siblings and across roots, hence a total order
        // wherever it is used; u32::MAX only for memberless subtrees,
        // which build_hierarchy never produces).
        let mut min_member = vec![u32::MAX; n];
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut stack: Vec<(u32, usize)> = self.roots.iter().map(|&r| (r, 0)).collect();
        while let Some((x, child_at)) = stack.pop() {
            let node = &self.nodes[x as usize];
            if child_at < node.children.len() {
                stack.push((x, child_at + 1));
                stack.push((node.children[child_at], 0));
            } else {
                let own = node.own_cliques.iter().copied().min().unwrap_or(u32::MAX);
                let kids =
                    node.children.iter().map(|&c| min_member[c as usize]).min().unwrap_or(u32::MAX);
                min_member[x as usize] = own.min(kids);
                order.push(x);
            }
        }
        assert_eq!(order.len(), n, "roots do not cover every node exactly once");

        // DFS preorder over sorted roots with children sorted by key.
        let mut sorted_roots = self.roots.clone();
        sorted_roots.sort_unstable_by_key(|&r| min_member[r as usize]);
        let mut remap = vec![u32::MAX; n];
        let mut preorder: Vec<u32> = Vec::with_capacity(n);
        let mut dfs: Vec<u32> = sorted_roots.iter().rev().copied().collect();
        while let Some(x) = dfs.pop() {
            remap[x as usize] = preorder.len() as u32;
            preorder.push(x);
            let mut kids = self.nodes[x as usize].children.clone();
            kids.sort_unstable_by_key(|&c| min_member[c as usize]);
            dfs.extend(kids.iter().rev());
        }

        let nodes: Vec<HierarchyNode> = preorder
            .iter()
            .map(|&x| {
                let node = &self.nodes[x as usize];
                let mut children: Vec<u32> =
                    node.children.iter().map(|&c| remap[c as usize]).collect();
                children.sort_unstable();
                let mut own_cliques = node.own_cliques.clone();
                own_cliques.sort_unstable();
                HierarchyNode {
                    k: node.k,
                    parent: node.parent.map(|p| remap[p as usize]),
                    children,
                    own_cliques,
                    size: node.size,
                }
            })
            .collect();
        let roots: Vec<u32> = sorted_roots.iter().map(|&r| remap[r as usize]).collect();
        Hierarchy { nodes, roots, rs: self.rs }
    }
}

/// Asserts structural equivalence of two forests (canonical-form
/// equality), with a first-difference diagnostic naming the node and field
/// that diverge.
///
/// # Panics
/// Panics (like `assert_eq!`) when the forests are not equivalent.
#[track_caller]
pub fn assert_forest_eq(actual: &Hierarchy, expected: &Hierarchy) {
    let a = actual.canonical();
    let b = expected.canonical();
    if a == b {
        return;
    }
    assert_eq!(a.rs, b.rs, "forests decompose different (r, s) spaces");
    assert_eq!(
        a.nodes.len(),
        b.nodes.len(),
        "node counts differ: {} vs {} (roots {} vs {})",
        a.nodes.len(),
        b.nodes.len(),
        a.roots.len(),
        b.roots.len()
    );
    assert_eq!(a.roots, b.roots, "root sets differ");
    for (id, (na, nb)) in a.nodes.iter().zip(&b.nodes).enumerate() {
        assert_eq!(na.k, nb.k, "canonical node {id}: k differs ({} vs {})", na.k, nb.k);
        assert_eq!(na.parent, nb.parent, "canonical node {id} (k={}): parent differs", na.k);
        assert_eq!(na.children, nb.children, "canonical node {id} (k={}): children differ", na.k);
        assert_eq!(
            na.own_cliques, nb.own_cliques,
            "canonical node {id} (k={}): own_cliques differ",
            na.k
        );
        assert_eq!(na.size, nb.size, "canonical node {id} (k={}): size differs", na.k);
    }
    unreachable!("canonical forms differ but no field mismatch was found");
}

#[cfg(test)]
mod tests {
    use super::super::build_hierarchy;
    use super::*;
    use crate::peel::peel;
    use crate::space::{CachedSpace, CoreSpace};

    fn sample_forest() -> Hierarchy {
        let g = hdsd_datasets::holme_kim(100, 4, 0.5, 11);
        let sp = CachedSpace::build(&CoreSpace::new(&g));
        let kappa = peel(&sp).kappa;
        build_hierarchy(&sp, &kappa)
    }

    #[test]
    fn canonical_is_idempotent_and_equivalent() {
        let h = sample_forest();
        let c = h.canonical();
        assert_eq!(c.canonical(), c, "canonicalization must be idempotent");
        assert_forest_eq(&h, &c);
        // The canonical form preserves every structural aggregate.
        assert_eq!(c.len(), h.len());
        assert_eq!(c.depth(), h.depth());
        let sizes = |f: &Hierarchy| {
            let mut v: Vec<usize> = f.nodes.iter().map(|n| n.size).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sizes(&c), sizes(&h));
        // Parent/child links stay mutually consistent after renumbering.
        for (i, node) in c.nodes.iter().enumerate() {
            for &ch in &node.children {
                assert_eq!(c.nodes[ch as usize].parent, Some(i as u32));
            }
            if let Some(p) = node.parent {
                assert!(c.nodes[p as usize].children.contains(&(i as u32)));
            }
        }
    }

    #[test]
    fn canonical_erases_permutation_artifacts() {
        let h = sample_forest();
        // Permute node ids and shuffle child/own orders: still equivalent.
        let n = h.nodes.len() as u32;
        let perm: Vec<u32> = (0..n).map(|i| (i + n / 2 + 1) % n).collect();
        let mut nodes: Vec<HierarchyNode> = vec![
            HierarchyNode {
                k: 0,
                parent: None,
                children: Vec::new(),
                own_cliques: Vec::new(),
                size: 0
            };
            n as usize
        ];
        for (i, node) in h.nodes.iter().enumerate() {
            let mut clone = node.clone();
            clone.parent = clone.parent.map(|p| perm[p as usize]);
            for c in &mut clone.children {
                *c = perm[*c as usize];
            }
            clone.children.reverse();
            clone.own_cliques.reverse();
            nodes[perm[i] as usize] = clone;
        }
        let mut roots: Vec<u32> = h.roots.iter().map(|&r| perm[r as usize]).collect();
        roots.reverse();
        let permuted = Hierarchy { nodes, roots, rs: h.rs };
        assert_forest_eq(&permuted, &h);
    }

    #[test]
    #[should_panic(expected = "k differs")]
    fn assert_forest_eq_catches_threshold_changes() {
        let h = sample_forest();
        let mut broken = h.clone();
        broken.nodes[0].k += 1;
        assert_forest_eq(&broken, &h);
    }

    #[test]
    #[should_panic]
    fn assert_forest_eq_catches_member_moves() {
        let h = sample_forest();
        let mut broken = h.clone();
        // Move one own clique to a different node.
        let donor = (0..broken.nodes.len())
            .find(|&i| broken.nodes[i].own_cliques.len() > 1)
            .expect("some node owns two cliques");
        let taker = (0..broken.nodes.len()).find(|&i| i != donor).unwrap();
        let c = broken.nodes[donor].own_cliques.pop().unwrap();
        broken.nodes[taker].own_cliques.push(c);
        assert_forest_eq(&broken, &h);
    }
}
