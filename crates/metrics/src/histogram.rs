//! Small histogram helper for κ / degree-level distributions.

/// A dense histogram over `u32` values.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    /// `counts[v]` = number of occurrences of value `v`.
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub total: u64,
}

impl Histogram {
    /// Maximum observed value, or `None` when empty.
    pub fn max_value(&self) -> Option<u32> {
        self.counts.iter().rposition(|&c| c > 0).map(|i| i as u32)
    }

    /// Mean observed value (0 for empty histograms).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: f64 = self.counts.iter().enumerate().map(|(v, &c)| v as f64 * c as f64).sum();
        sum / self.total as f64
    }

    /// The p-th percentile value (`0.0 ..= 1.0`), by cumulative count.
    pub fn percentile(&self, p: f64) -> u32 {
        if self.total == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut cum = 0u64;
        for (v, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target.max(1) {
                return v as u32;
            }
        }
        self.max_value().unwrap_or(0)
    }
}

/// Builds a dense histogram from values.
pub fn histogram(values: impl IntoIterator<Item = u32>) -> Histogram {
    let mut h = Histogram::default();
    for v in values {
        let idx = v as usize;
        if idx >= h.counts.len() {
            h.counts.resize(idx + 1, 0);
        }
        h.counts[idx] += 1;
        h.total += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_counts() {
        let h = histogram([0u32, 1, 1, 3]);
        assert_eq!(h.counts, vec![1, 2, 0, 1]);
        assert_eq!(h.total, 4);
        assert_eq!(h.max_value(), Some(3));
        assert!((h.mean() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let h = histogram([1u32, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(h.percentile(0.5), 5);
        assert_eq!(h.percentile(1.0), 10);
        assert_eq!(h.percentile(0.0), 1);
    }

    #[test]
    fn empty() {
        let h = histogram(std::iter::empty());
        assert_eq!(h.max_value(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0);
    }
}
