//! Top-k agreement: how well an approximate decomposition identifies the
//! *densest* r-cliques — often what applications actually consume (spam
//! farms, motif cores), and more forgiving than full-ranking Kendall-τ.

/// Jaccard similarity of the top-`k` index sets of two score vectors
/// (ties at the cut are broken by index, identically for both sides).
///
/// Returns 1.0 for `k = 0` or two empty vectors.
///
/// # Panics
/// Panics when lengths differ.
pub fn jaccard_top_k(a: &[u32], b: &[u32], k: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "jaccard_top_k: length mismatch");
    let k = k.min(a.len());
    if k == 0 {
        return 1.0;
    }
    let top = |v: &[u32]| -> Vec<u32> {
        let mut idx: Vec<u32> = (0..v.len() as u32).collect();
        idx.sort_unstable_by(|&x, &y| v[y as usize].cmp(&v[x as usize]).then(x.cmp(&y)));
        let mut t = idx[..k].to_vec();
        t.sort_unstable();
        t
    };
    let ta = top(a);
    let tb = top(b);
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < ta.len() && j < tb.len() {
        match ta[i].cmp(&tb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    inter as f64 / (2 * k - inter) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_vectors_are_one() {
        let v = [5u32, 3, 9, 1, 9];
        for k in 0..=5 {
            assert_eq!(jaccard_top_k(&v, &v, k), 1.0, "k={k}");
        }
    }

    #[test]
    fn disjoint_tops() {
        let a = [9u32, 9, 0, 0];
        let b = [0u32, 0, 9, 9];
        assert_eq!(jaccard_top_k(&a, &b, 2), 0.0);
        // at k=4 the sets cover everything: similarity 1
        assert_eq!(jaccard_top_k(&a, &b, 4), 1.0);
    }

    #[test]
    fn partial_overlap() {
        let a = [9u32, 8, 7, 0];
        let b = [9u32, 0, 7, 8];
        // top-2 of a = {0,1}, of b = {0,3}: |∩|=1, |∪|=3
        assert!((jaccard_top_k(&a, &b, 2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_len_is_clamped() {
        let a = [1u32, 2];
        assert_eq!(jaccard_top_k(&a, &a, 100), 1.0);
    }

    proptest! {
        #[test]
        fn prop_bounded_and_symmetric(
            pairs in proptest::collection::vec((0u32..10, 0u32..10), 1..60),
            k in 0usize..70,
        ) {
            let a: Vec<u32> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<u32> = pairs.iter().map(|p| p.1).collect();
            let j1 = jaccard_top_k(&a, &b, k);
            let j2 = jaccard_top_k(&b, &a, k);
            prop_assert!((0.0..=1.0).contains(&j1));
            prop_assert!((j1 - j2).abs() < 1e-12);
        }

        #[test]
        fn prop_self_is_one(v in proptest::collection::vec(0u32..50, 1..60), k in 1usize..60) {
            prop_assert_eq!(jaccard_top_k(&v, &v, k), 1.0);
        }
    }
}
