#![warn(missing_docs)]
//! # hdsd-metrics
//!
//! Accuracy metrics for approximate decompositions.
//!
//! The paper reports solution quality as the **Kendall-Tau rank
//! correlation** between the intermediate τ indices and the exact κ indices
//! (Figure 1a, Figure 6, Figure 7): 1.0 means identical rankings. Because κ
//! vectors contain massive ties (many r-cliques share an index), the tau-b
//! variant with tie correction is required; it is implemented here in
//! `O(n log n)` with a merge-sort inversion count. A quadratic reference
//! implementation backs the property tests.
//!
//! Also provided: Spearman's ρ, error statistics for the query-driven
//! scenario, and histogram helpers for the degree-level experiments.

pub mod error_stats;
pub mod histogram;
pub mod kendall;
pub mod spearman;
pub mod topk;

pub use error_stats::{relative_error_stats, ErrorStats};
pub use histogram::{histogram, Histogram};
pub use kendall::{kendall_tau_b, kendall_tau_b_ref};
pub use spearman::spearman_rho;
pub use topk::jaccard_top_k;
