//! Error statistics for the query-driven estimation experiments.

/// Summary of estimation error between `estimate` and `exact` vectors.
#[derive(Clone, Debug, PartialEq)]
pub struct ErrorStats {
    /// Fraction of entries where `estimate == exact`.
    pub exact_fraction: f64,
    /// Mean of `|estimate − exact| / max(exact, 1)`.
    pub mean_relative_error: f64,
    /// Maximum absolute error.
    pub max_abs_error: u32,
    /// Mean absolute error.
    pub mean_abs_error: f64,
    /// Number of compared entries.
    pub count: usize,
}

/// Computes [`ErrorStats`] over paired vectors.
///
/// The relative error denominator is clamped at 1 so κ = 0 ground truth
/// doesn't divide by zero (matching how the paper reports error on
/// low-index vertices).
///
/// # Panics
/// Panics when lengths differ.
pub fn relative_error_stats(estimate: &[u32], exact: &[u32]) -> ErrorStats {
    assert_eq!(estimate.len(), exact.len(), "relative_error_stats: length mismatch");
    let n = estimate.len();
    if n == 0 {
        return ErrorStats {
            exact_fraction: 1.0,
            mean_relative_error: 0.0,
            max_abs_error: 0,
            mean_abs_error: 0.0,
            count: 0,
        };
    }
    let mut exact_hits = 0usize;
    let mut rel_sum = 0f64;
    let mut abs_sum = 0f64;
    let mut max_abs = 0u32;
    for (&a, &b) in estimate.iter().zip(exact) {
        let abs = a.abs_diff(b);
        if abs == 0 {
            exact_hits += 1;
        }
        rel_sum += abs as f64 / (b.max(1)) as f64;
        abs_sum += abs as f64;
        max_abs = max_abs.max(abs);
    }
    ErrorStats {
        exact_fraction: exact_hits as f64 / n as f64,
        mean_relative_error: rel_sum / n as f64,
        max_abs_error: max_abs,
        mean_abs_error: abs_sum / n as f64,
        count: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match() {
        let s = relative_error_stats(&[1, 2, 3], &[1, 2, 3]);
        assert_eq!(s.exact_fraction, 1.0);
        assert_eq!(s.mean_relative_error, 0.0);
        assert_eq!(s.max_abs_error, 0);
    }

    #[test]
    fn mixed_errors() {
        let s = relative_error_stats(&[2, 2, 0], &[1, 2, 4]);
        assert!((s.exact_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_abs_error, 4);
        assert!((s.mean_abs_error - 5.0 / 3.0).abs() < 1e-12);
        // rel errors: 1/1, 0/2, 4/4 -> mean 2/3
        assert!((s.mean_relative_error - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_ground_truth_is_clamped() {
        let s = relative_error_stats(&[3], &[0]);
        assert_eq!(s.mean_relative_error, 3.0);
    }

    #[test]
    fn empty_is_trivially_exact() {
        let s = relative_error_stats(&[], &[]);
        assert_eq!(s.exact_fraction, 1.0);
        assert_eq!(s.count, 0);
    }
}
