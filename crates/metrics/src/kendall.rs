//! Kendall-Tau rank correlation with tie correction (tau-b).
//!
//! For paired observations `(x_i, y_i)` the tau-b statistic is
//!
//! ```text
//! τ_b = (C − D) / sqrt((n0 − n1)(n0 − n2))
//! n0 = n(n−1)/2,  n1 = Σ_ties_x t(t−1)/2,  n2 = Σ_ties_y t(t−1)/2
//! ```
//!
//! where `C`/`D` count concordant/discordant pairs. The fast path sorts by
//! `(x, y)` and counts discordant pairs as inversions of the `y` sequence
//! with a bottom-up merge sort, handling joint ties explicitly — the
//! standard Knight (1966) algorithm, `O(n log n)`.

/// Quadratic reference implementation (used by tests and tiny inputs).
pub fn kendall_tau_b_ref(x: &[u32], y: &[u32]) -> f64 {
    assert_eq!(x.len(), y.len(), "kendall_tau_b: length mismatch");
    let n = x.len();
    if n < 2 {
        return 1.0;
    }
    let (mut concordant, mut discordant) = (0i64, 0i64);
    let (mut ties_x, mut ties_y) = (0i64, 0i64);
    for i in 0..n {
        for j in i + 1..n {
            let dx = x[i].cmp(&x[j]);
            let dy = y[i].cmp(&y[j]);
            match (dx, dy) {
                (std::cmp::Ordering::Equal, std::cmp::Ordering::Equal) => {}
                (std::cmp::Ordering::Equal, _) => ties_x += 1,
                (_, std::cmp::Ordering::Equal) => ties_y += 1,
                (a, b) if a == b => concordant += 1,
                _ => discordant += 1,
            }
        }
    }
    let n0 = (n as i64) * (n as i64 - 1) / 2;
    // joint ties count toward neither n1-only nor n2-only corrections:
    // n1 = pairs tied in x (including joint), n2 = pairs tied in y.
    let joint = n0 - concordant - discordant - ties_x - ties_y;
    let n1 = ties_x + joint;
    let n2 = ties_y + joint;
    let denom = (((n0 - n1) as f64) * ((n0 - n2) as f64)).sqrt();
    if denom == 0.0 {
        // One of the vectors is constant; define τ=1 when both are constant
        // (identical ordering information), else 0.
        let x_const = x.iter().all(|&v| v == x[0]);
        let y_const = y.iter().all(|&v| v == y[0]);
        return if x_const && y_const { 1.0 } else { 0.0 };
    }
    (concordant - discordant) as f64 / denom
}

/// `O(n log n)` Kendall tau-b (Knight's algorithm).
///
/// Returns 1.0 for inputs of length < 2 and for two constant vectors; 0.0
/// when exactly one vector is constant.
///
/// ```
/// use hdsd_metrics::kendall_tau_b;
/// assert!((kendall_tau_b(&[1, 2, 3], &[10, 20, 30]) - 1.0).abs() < 1e-12);
/// assert!((kendall_tau_b(&[1, 2, 3], &[30, 20, 10]) + 1.0).abs() < 1e-12);
/// ```
pub fn kendall_tau_b(x: &[u32], y: &[u32]) -> f64 {
    assert_eq!(x.len(), y.len(), "kendall_tau_b: length mismatch");
    let n = x.len();
    if n < 2 {
        return 1.0;
    }

    // Sort indices by (x, y).
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        (x[a as usize], y[a as usize]).cmp(&(x[b as usize], y[b as usize]))
    });

    // Tie statistics on x and joint (x, y).
    let (mut n1, mut n3) = (0i64, 0i64); // pairs tied in x; pairs tied in both
    {
        let mut run_x = 1i64;
        let mut run_xy = 1i64;
        for w in idx.windows(2) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            if x[a] == x[b] {
                run_x += 1;
                if y[a] == y[b] {
                    run_xy += 1;
                } else {
                    n3 += run_xy * (run_xy - 1) / 2;
                    run_xy = 1;
                }
            } else {
                n1 += run_x * (run_x - 1) / 2;
                n3 += run_xy * (run_xy - 1) / 2;
                run_x = 1;
                run_xy = 1;
            }
        }
        n1 += run_x * (run_x - 1) / 2;
        n3 += run_xy * (run_xy - 1) / 2;
    }

    // Count discordant-ish pairs: inversions of y in x-sorted order (ties in
    // y are not inversions). Bottom-up merge sort counting strict inversions.
    let mut ys: Vec<u32> = idx.iter().map(|&i| y[i as usize]).collect();
    let swaps = count_inversions(&mut ys);

    // Tie statistics on y.
    let n2: i64 = {
        // ys is now sorted.
        let mut t = 0i64;
        let mut run = 1i64;
        for w in ys.windows(2) {
            if w[0] == w[1] {
                run += 1;
            } else {
                t += run * (run - 1) / 2;
                run = 1;
            }
        }
        t + run * (run - 1) / 2
    };

    let n0 = (n as i64) * (n as i64 - 1) / 2;
    // C - D = n0 - n1 - n2 + n3 - 2*swaps  (Knight's identity)
    let num = (n0 - n1 - n2 + n3 - 2 * swaps) as f64;
    let denom = (((n0 - n1) as f64) * ((n0 - n2) as f64)).sqrt();
    if denom == 0.0 {
        let x_const = x.iter().all(|&v| v == x[0]);
        let y_const = y.iter().all(|&v| v == y[0]);
        return if x_const && y_const { 1.0 } else { 0.0 };
    }
    num / denom
}

/// Counts strict inversions while merge-sorting `a` in place.
fn count_inversions(a: &mut [u32]) -> i64 {
    let n = a.len();
    let mut buf = vec![0u32; n];
    let mut inversions = 0i64;
    let mut width = 1usize;
    while width < n {
        let mut lo = 0usize;
        while lo + width < n {
            let mid = lo + width;
            let hi = (lo + 2 * width).min(n);
            // Merge a[lo..mid] and a[mid..hi].
            let (mut i, mut j, mut k) = (lo, mid, lo);
            while i < mid && j < hi {
                if a[j] < a[i] {
                    inversions += (mid - i) as i64;
                    buf[k] = a[j];
                    j += 1;
                } else {
                    buf[k] = a[i];
                    i += 1;
                }
                k += 1;
            }
            while i < mid {
                buf[k] = a[i];
                i += 1;
                k += 1;
            }
            while j < hi {
                buf[k] = a[j];
                j += 1;
                k += 1;
            }
            a[lo..hi].copy_from_slice(&buf[lo..hi]);
            lo += 2 * width;
        }
        width *= 2;
    }
    inversions
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_agreement_and_reversal() {
        let x = [1u32, 2, 3, 4, 5];
        let y_rev = [5u32, 4, 3, 2, 1];
        assert!((kendall_tau_b(&x, &x) - 1.0).abs() < 1e-12);
        assert!((kendall_tau_b(&x, &y_rev) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn trivial_inputs() {
        assert_eq!(kendall_tau_b(&[], &[]), 1.0);
        assert_eq!(kendall_tau_b(&[7], &[3]), 1.0);
        // both constant
        assert_eq!(kendall_tau_b(&[2, 2, 2], &[9, 9, 9]), 1.0);
        // one constant
        assert_eq!(kendall_tau_b(&[2, 2, 2], &[1, 2, 3]), 0.0);
    }

    #[test]
    fn known_tied_case() {
        // scipy.stats.kendalltau([1,2,2,3], [1,3,2,4]) = 0.9128709291752769 (tau-b)
        let t = kendall_tau_b(&[1, 2, 2, 3], &[1, 3, 2, 4]);
        assert!((t - 0.912_870_929_175_276_9).abs() < 1e-12, "got {t}");
    }

    #[test]
    fn inversion_counter_sorts() {
        let mut v = vec![5u32, 1, 4, 2, 3];
        let inv = count_inversions(&mut v);
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
        assert_eq!(inv, 6); // (5,1),(5,4),(5,2),(5,3),(4,2),(4,3)
    }

    #[test]
    fn matches_reference_on_fixed_cases() {
        let cases: &[(&[u32], &[u32])] = &[
            (&[1, 2, 3, 4], &[1, 2, 3, 4]),
            (&[1, 1, 2, 2], &[2, 2, 1, 1]),
            (&[3, 1, 2], &[1, 2, 3]),
            (&[0, 0, 0, 1], &[5, 5, 6, 6]),
            (&[9, 9, 9, 9], &[9, 9, 9, 9]),
        ];
        for (x, y) in cases {
            let fast = kendall_tau_b(x, y);
            let slow = kendall_tau_b_ref(x, y);
            assert!((fast - slow).abs() < 1e-12, "{x:?} vs {y:?}: {fast} != {slow}");
        }
    }

    proptest! {
        #[test]
        fn prop_fast_matches_reference(
            pairs in proptest::collection::vec((0u32..8, 0u32..8), 2..120)
        ) {
            let x: Vec<u32> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<u32> = pairs.iter().map(|p| p.1).collect();
            let fast = kendall_tau_b(&x, &y);
            let slow = kendall_tau_b_ref(&x, &y);
            prop_assert!((fast - slow).abs() < 1e-9, "{} != {}", fast, slow);
        }

        #[test]
        fn prop_symmetry(pairs in proptest::collection::vec((0u32..10, 0u32..10), 2..80)) {
            let x: Vec<u32> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<u32> = pairs.iter().map(|p| p.1).collect();
            let a = kendall_tau_b(&x, &y);
            let b = kendall_tau_b(&y, &x);
            prop_assert!((a - b).abs() < 1e-9);
        }

        #[test]
        fn prop_bounded(pairs in proptest::collection::vec((0u32..6, 0u32..6), 2..100)) {
            let x: Vec<u32> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<u32> = pairs.iter().map(|p| p.1).collect();
            let t = kendall_tau_b(&x, &y);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&t));
        }

        #[test]
        fn prop_self_correlation_is_one(xs in proptest::collection::vec(0u32..100, 2..100)) {
            // Identical vectors always give τ = 1 (or 1 by convention if constant).
            prop_assert!((kendall_tau_b(&xs, &xs) - 1.0).abs() < 1e-9);
        }
    }
}
