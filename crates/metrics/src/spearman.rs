//! Spearman's ρ with average ranks for ties.

/// Spearman rank correlation of two paired `u32` vectors.
///
/// Ties receive average (fractional) ranks; the statistic is the Pearson
/// correlation of the rank vectors. Returns 1.0 for inputs shorter than 2
/// and when both vectors are constant, 0.0 when exactly one is constant.
pub fn spearman_rho(x: &[u32], y: &[u32]) -> f64 {
    assert_eq!(x.len(), y.len(), "spearman_rho: length mismatch");
    let n = x.len();
    if n < 2 {
        return 1.0;
    }
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    pearson(&rx, &ry)
}

/// Average (mid) ranks, 1-based.
fn average_ranks(v: &[u32]) -> Vec<f64> {
    let n = v.len();
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_unstable_by_key(|&i| v[i as usize]);
    let mut ranks = vec![0f64; n];
    let mut i = 0usize;
    while i < n {
        let mut j = i;
        while j + 1 < n && v[idx[j + 1] as usize] == v[idx[i] as usize] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k] as usize] = avg;
        }
        i = j + 1;
    }
    ranks
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return if va == 0.0 && vb == 0.0 { 1.0 } else { 0.0 };
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn monotone_is_one() {
        assert!((spearman_rho(&[1, 2, 3, 4], &[10, 20, 30, 40]) - 1.0).abs() < 1e-12);
        assert!((spearman_rho(&[1, 2, 3, 4], &[40, 30, 20, 10]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_ranks_handle_ties() {
        assert_eq!(average_ranks(&[10, 20, 20, 30]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(average_ranks(&[5, 5, 5]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn constants() {
        assert_eq!(spearman_rho(&[3, 3, 3], &[3, 3, 3]), 1.0);
        assert_eq!(spearman_rho(&[3, 3, 3], &[1, 2, 3]), 0.0);
    }

    proptest! {
        #[test]
        fn prop_bounded(pairs in proptest::collection::vec((0u32..10, 0u32..10), 2..80)) {
            let x: Vec<u32> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<u32> = pairs.iter().map(|p| p.1).collect();
            let r = spearman_rho(&x, &y);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }

        #[test]
        fn prop_self_is_one(xs in proptest::collection::vec(0u32..50, 2..80)) {
            prop_assert!((spearman_rho(&xs, &xs) - 1.0).abs() < 1e-9);
        }
    }
}
