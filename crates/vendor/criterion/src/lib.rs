//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace ships the
//! slice of the criterion API its benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark runs one warm-up
//! call, then `sample_size` timed samples, and reports min / mean wall
//! time on stdout. No statistics engine, no HTML reports — enough to track
//! relative performance and to keep every `benches/` target compiling and
//! runnable offline. Set `CRITERION_SAMPLES` to override the sample count
//! (e.g. `CRITERION_SAMPLES=3` for a smoke run).

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n: &usize| n >= 1);
        Criterion { sample_size: samples.unwrap_or(10) }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        if std::env::var("CRITERION_SAMPLES").is_err() {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("\nbenchmark group: {name}");
        BenchmarkGroup { _c: self, name, sample_size }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_one("", &id.into(), self.sample_size, &mut f);
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if std::env::var("CRITERION_SAMPLES").is_err() {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_one(&self.name, &id.into(), self.sample_size, &mut f);
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&self.name, &id.0, self.sample_size, &mut wrapped);
    }

    /// Ends the group (printing is incremental; this is a no-op marker).
    pub fn finish(self) {}
}

/// A `name/parameter` benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Builds a bare parameter id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, recording one sample per configured repetition.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (also lets the closure touch its caches).
        std::hint::black_box(f());
        let target = self.samples.capacity().max(1);
        for _ in 0..target {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn run_one(group: &str, id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    let mut b = Bencher { samples: Vec::with_capacity(samples), iters_per_sample: 1 };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label:<50} (no samples)");
        return;
    }
    let min = b.samples.iter().min().unwrap();
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "  {label:<50} min {:>12.3?}  mean {:>12.3?}  ({} samples)",
        min,
        mean,
        b.samples.len()
    );
}

/// Re-export: `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u32;
        group.bench_function("counter", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls >= 3, "warmup + 2 samples, got {calls}");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default().sample_size(1);
        let mut group = c.benchmark_group("shim");
        let data = vec![1u32, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, v| {
            b.iter(|| v.iter().sum::<u32>())
        });
        group.finish();
    }
}
