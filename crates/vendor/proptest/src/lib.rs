//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace ships the
//! slice of the proptest API its tests use: range and tuple strategies,
//! `collection::vec`, `prop_map`, the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert*` macros.
//!
//! Semantics differ from the real crate in two deliberate ways:
//!
//! * no shrinking — a failing case reports its inputs (via the panic
//!   message of the assert that fired) but is not minimized;
//! * generation is driven by a fixed-seed SplitMix64 stream, so every run
//!   of a test explores the same cases (fully reproducible CI).

/// One SplitMix64 step: advances `state` and returns 64 pseudo-random
/// bits. Exposed because every hand-rolled test/bench generator in this
/// workspace wants the same deterministic stream — share this instead of
/// pasting the constants again.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Test-runner plumbing: RNG and configuration.
pub mod test_runner {
    /// Deterministic SplitMix64 stream used to drive generation.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Fixed-seed RNG (every test run sees the same case stream).
        pub fn deterministic() -> Self {
            TestRng(0x5EED_CAFE_F00D_D00D)
        }

        /// Next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            crate::splitmix64(&mut self.0)
        }

        /// Uniform draw from `[0, n)`; `n` must be positive.
        #[inline]
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }

    /// Per-test configuration (`cases` = iterations to run).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` iterations.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }

        /// The case count the runner actually uses: the `PROPTEST_CASES`
        /// environment variable overrides the configured value (mirroring
        /// the real crate), so CI can rerun the same suites with a much
        /// larger case budget — see the nightly `slow-props` job — while
        /// the in-source configs stay tuned for the fast PR gate.
        pub fn effective_cases(&self) -> u32 {
            Self::resolve_cases(self.cases, std::env::var("PROPTEST_CASES").ok().as_deref())
        }

        /// [`Config::effective_cases`] with the env lookup injected —
        /// split out so the override rule is testable without mutating
        /// process-global state under a parallel test runner.
        pub(crate) fn resolve_cases(configured: u32, env_override: Option<&str>) -> u32 {
            match env_override {
                Some(v) => v.parse().unwrap_or_else(|_| {
                    panic!("PROPTEST_CASES must be a non-negative integer, got {v:?}")
                }),
                None => configured,
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (proptest's `prop_map`).
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u64) - (lo as u64) + 1;
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident)+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A B);
    impl_tuple_strategy!(A B C);
    impl_tuple_strategy!(A B C D);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec()`]: a fixed length or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of `element` values with lengths drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + if span > 0 { rng.below(span) as usize } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header followed by
/// any number of `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            #[test]
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for _case in 0..config.effective_cases() {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_strategy_respect_bounds() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..200 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let xs = crate::collection::vec(0u32..5, 2..7).generate(&mut rng);
            assert!((2..7).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
            let fixed = crate::collection::vec(0u32..5, 4).generate(&mut rng);
            assert_eq!(fixed.len(), 4);
            let (a, b) = (0u32..10, 5u32..6).generate(&mut rng);
            assert!(a < 10);
            assert_eq!(b, 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_with_config_runs(xs in crate::collection::vec(0u32..50, 0..20)) {
            prop_assert!(xs.len() < 20);
            prop_assert_eq!(xs.iter().filter(|&&x| x >= 50).count(), 0);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config_runs(a in 0u32..4, b in 1usize..3) {
            prop_assert!(a < 4);
            prop_assert_ne!(b, 0);
        }
    }

    #[test]
    fn env_var_overrides_case_count() {
        // Exercises the override rule through the injected form — setting
        // the real env var here would race the proptest!-generated tests
        // running on sibling threads, which read it live.
        assert_eq!(crate::test_runner::Config::resolve_cases(3, Some("7")), 7);
        assert_eq!(crate::test_runner::Config::resolve_cases(3, None), 3);
        assert_eq!(crate::test_runner::Config::resolve_cases(64, Some("500")), 500);
    }

    #[test]
    fn prop_map_transforms() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::deterministic();
        let doubled = (1u32..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }
}
