//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace ships the
//! small slice of the `rand 0.8` API it actually uses: `SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen` and `Rng::gen_range`. The
//! generator is xoshiro256++ (seeded through SplitMix64), which matches the
//! statistical quality the real `SmallRng` provides on 64-bit targets.
//! Streams are deterministic per seed but **not** bit-compatible with the
//! real crate — fine here, since every consumer treats seeds as opaque.

/// Random number generator core: a source of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its canonical distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the type;
    /// `bool`: fair coin).
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`low..high`, half-open).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Sample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased sampling of `[0, n)` by rejection (Lemire-style widening).
#[inline]
fn uniform_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample an empty range");
    // Rejection sampling on the top bits; bias is negligible for the modest
    // ranges used here, but do it properly anyway.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64) - (lo as u64) + 1;
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator standing in for rand's
    /// `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0u32..1000)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0u32..1000)).collect();
        let vc: Vec<u32> = (0..8).map(|_| c.gen_range(0u32..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_mean_is_roughly_half() {
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
