//! Brute-force oracles for the clique substrate: every optimized counter
//! (oriented merge-intersection triangles, triple-merge 4-cliques,
//! incidence lists) is checked against the O(n³)/O(n⁴) definition on
//! arbitrary small graphs.

use hdsd_graph::{
    count_triangles_per_edge, degeneracy_order, total_k4, total_triangles, GraphBuilder,
    Orientation, TriangleList,
};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = hdsd_graph::CsrGraph> {
    proptest::collection::vec((0u32..15, 0u32..15), 0..70)
        .prop_map(|edges| GraphBuilder::new().edges(edges).build())
}

fn brute_triangles(g: &hdsd_graph::CsrGraph) -> u64 {
    let n = g.num_vertices() as u32;
    let mut count = 0;
    for a in 0..n {
        for b in a + 1..n {
            if !g.has_edge(a, b) {
                continue;
            }
            for c in b + 1..n {
                if g.has_edge(a, c) && g.has_edge(b, c) {
                    count += 1;
                }
            }
        }
    }
    count
}

fn brute_k4(g: &hdsd_graph::CsrGraph) -> u64 {
    let n = g.num_vertices() as u32;
    let mut count = 0;
    for a in 0..n {
        for b in a + 1..n {
            if !g.has_edge(a, b) {
                continue;
            }
            for c in b + 1..n {
                if !(g.has_edge(a, c) && g.has_edge(b, c)) {
                    continue;
                }
                for d in c + 1..n {
                    if g.has_edge(a, d) && g.has_edge(b, d) && g.has_edge(c, d) {
                        count += 1;
                    }
                }
            }
        }
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn triangle_total_matches_brute_force(g in arb_graph()) {
        prop_assert_eq!(total_triangles(&g), brute_triangles(&g));
    }

    #[test]
    fn k4_total_matches_brute_force(g in arb_graph()) {
        prop_assert_eq!(total_k4(&g), brute_k4(&g));
    }

    #[test]
    fn per_edge_counts_match_brute_force(g in arb_graph()) {
        let counts = count_triangles_per_edge(&g);
        for (e, &(u, v)) in g.edges().iter().enumerate() {
            let brute = g
                .vertices()
                .filter(|&w| w != u && w != v && g.has_edge(u, w) && g.has_edge(v, w))
                .count() as u32;
            prop_assert_eq!(counts[e], brute, "edge ({}, {})", u, v);
        }
    }

    #[test]
    fn triangle_list_is_complete_and_exact(g in arb_graph()) {
        let tl = TriangleList::build(&g);
        prop_assert_eq!(tl.len() as u64, brute_triangles(&g));
        // every listed triple really is a triangle, listed once
        let mut seen = std::collections::HashSet::new();
        for vs in &tl.tri_verts {
            prop_assert!(g.has_edge(vs[0], vs[1]));
            prop_assert!(g.has_edge(vs[0], vs[2]));
            prop_assert!(g.has_edge(vs[1], vs[2]));
            prop_assert!(seen.insert(*vs), "duplicate triangle {:?}", vs);
        }
    }

    #[test]
    fn degeneracy_bounds_out_degrees(g in arb_graph()) {
        let (order, d) = degeneracy_order(&g);
        let o = Orientation::new(&g, order);
        prop_assert!(o.max_out_degree() <= d as usize);
        // the degeneracy of a graph with any edge is >= 1
        if g.num_edges() > 0 {
            prop_assert!(d >= 1);
        }
    }

    #[test]
    fn builder_is_idempotent(g in arb_graph()) {
        let rebuilt = GraphBuilder::new()
            .with_num_vertices(g.num_vertices())
            .edges(g.edges().iter().copied())
            .build();
        prop_assert_eq!(g.edges(), rebuilt.edges());
        prop_assert_eq!(g.num_vertices(), rebuilt.num_vertices());
    }

    #[test]
    fn edge_id_lookup_agrees_with_edge_table(g in arb_graph()) {
        for (e, &(u, v)) in g.edges().iter().enumerate() {
            prop_assert_eq!(g.edge_id(u, v), Some(e as u32));
            prop_assert_eq!(g.edge_id(v, u), Some(e as u32));
        }
        // a non-edge never resolves
        let n = g.num_vertices() as u32;
        for u in 0..n.min(6) {
            for v in 0..n.min(6) {
                if u != v && !g.has_edge(u, v) {
                    prop_assert_eq!(g.edge_id(u, v), None);
                }
            }
        }
    }

    #[test]
    fn io_round_trip_preserves_graph(g in arb_graph()) {
        let mut buf = Vec::new();
        {
            use std::io::Write;
            writeln!(buf, "# test").unwrap();
            for &(u, v) in g.edges() {
                writeln!(buf, "{u} {v}").unwrap();
            }
        }
        let g2 = hdsd_graph::io::read_edge_list_from(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(g.edges(), g2.edges());
    }
}
