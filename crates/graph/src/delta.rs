//! Incremental CSR and clique-substrate maintenance under edge batches.
//!
//! [`crate::GraphBuilder`] rebuilds everything from the raw edge list:
//! canonicalize, sort, dedup, refill every adjacency row. For a serving
//! engine that applies small update batches to a large resident graph that
//! cost is absurd — the batch touches a handful of rows, the rebuild pays
//! for all of them, and the downstream clique substrates (triangle list,
//! K4 counts) re-enumerate the whole graph on top.
//!
//! This module applies a mixed insert/remove batch **by splicing**:
//!
//! * [`apply_edge_batch`] produces the new [`CsrGraph`] with untouched
//!   adjacency rows copied and batch-touched rows merge-spliced, in flat
//!   `O(n + m)` array passes plus `O(Δ log Δ)` for the batch itself — no
//!   global sort, no dedup scan. The output is **bit-identical** to what
//!   `GraphBuilder` would produce for the updated edge set (same vertex
//!   count, same lexicographic edge ids, same row layout), so everything
//!   downstream that compares against a from-scratch build stays exact.
//!   The returned [`CsrDelta`] carries the stable edge-id remaps.
//! * [`triangle_delta`] maintains a canonical [`TriangleList`] across the
//!   batch: triangles destroyed by removed edges are looked up in the old
//!   incidence lists, triangles created by inserted edges are found by
//!   adjacency intersection around the batch only, and the survivor ids
//!   are spliced — again bit-identical to `TriangleList::build` on the
//!   new graph.
//! * [`mark_k4_touched`] computes which surviving triangles gained or
//!   lost a 4-clique, so the (3,4) container cache can re-derive only
//!   those rows instead of re-enumerating every K4.
//!
//! Update cost scales with the perturbation (`O(Δ · deg)` enumeration
//! around the batch) plus unavoidable flat remap passes over arrays whose
//! dense ids shift; the expensive parts of a rebuild — sorting, hashing,
//! global triangle/K4 enumeration — are gone.

use crate::csr::{CsrGraph, EdgeId, VertexId};
use crate::triangles::TriangleList;

/// Sentinel for "no counterpart on the other side of the delta" in id
/// remap tables (removed/destroyed on the old side, created on the new).
pub const NO_ID: u32 = u32::MAX;

/// Stable edge-id remaps for one applied batch.
///
/// Ids are the dense lexicographic ids of [`CsrGraph`]; removed and
/// inserted slots hold [`NO_ID`].
#[derive(Clone, Debug)]
pub struct CsrDelta {
    /// Old edge id → new edge id (`NO_ID` for removed edges).
    pub old_to_new: Vec<EdgeId>,
    /// New edge id → old edge id (`NO_ID` for inserted edges).
    pub new_to_old: Vec<EdgeId>,
    /// New ids of inserted edges, ascending.
    pub inserted_ids: Vec<EdgeId>,
    /// Old ids of removed edges, ascending.
    pub removed_ids: Vec<EdgeId>,
}

impl CsrDelta {
    /// Edges actually inserted (after dedup against the old graph).
    pub fn inserted(&self) -> u32 {
        self.inserted_ids.len() as u32
    }

    /// Edges actually removed.
    pub fn removed(&self) -> u32 {
        self.removed_ids.len() as u32
    }

    /// True when the batch changed nothing.
    pub fn is_noop(&self) -> bool {
        self.inserted_ids.is_empty() && self.removed_ids.is_empty()
    }

    /// Endpoints of the inserted edges in `graph` (the new graph),
    /// deduplicated and sorted.
    pub fn inserted_endpoints(&self, graph: &CsrGraph) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = self
            .inserted_ids
            .iter()
            .flat_map(|&e| {
                let (u, v) = graph.edge_endpoints(e);
                [u, v]
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Endpoints of the removed edges in `graph` (the old graph),
    /// deduplicated and sorted.
    pub fn removed_endpoints(&self, graph: &CsrGraph) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = self
            .removed_ids
            .iter()
            .flat_map(|&e| {
                let (u, v) = graph.edge_endpoints(e);
                [u, v]
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Applies a mixed batch to `g` by adjacency splicing, returning the new
/// graph and the edge-id remaps.
///
/// Semantics match [`GraphBuilder`](crate::GraphBuilder)-based rebuilds
/// exactly: self-loops and duplicate inserts are dropped, inserting a
/// present edge is a no-op, removing an absent edge is a no-op, and an
/// edge both removed and inserted in one batch ends up present (counted
/// as one removal plus one insertion, like a rebuild would). The vertex
/// set grows to cover inserted endpoints and never shrinks.
pub fn apply_edge_batch(
    g: &CsrGraph,
    insert: &[(VertexId, VertexId)],
    remove: &[(VertexId, VertexId)],
) -> (CsrGraph, CsrDelta) {
    let old_m = g.num_edges();
    let old_n = g.num_vertices();

    // Removals: resolve to old edge ids (absent edges are no-ops).
    let mut removed_ids: Vec<EdgeId> =
        remove.iter().filter_map(|&(u, v)| g.edge_id(u, v)).collect();
    removed_ids.sort_unstable();
    removed_ids.dedup();
    let mut removed_mask = vec![false; old_m];
    for &e in &removed_ids {
        removed_mask[e as usize] = true;
    }

    // Insertions: canonicalize, dedup, keep only edges absent from the
    // post-removal graph (an edge removed and re-inserted in one batch is
    // kept here, mirroring what a rebuild does).
    let mut ins: Vec<(VertexId, VertexId)> =
        insert.iter().filter(|&&(u, v)| u != v).map(|&(u, v)| (u.min(v), u.max(v))).collect();
    ins.sort_unstable();
    ins.dedup();
    ins.retain(|&(u, v)| match g.edge_id(u, v) {
        Some(e) => removed_mask[e as usize],
        None => true,
    });

    // Merge old (minus removed) with inserted into the new canonical edge
    // list, recording both remap directions. Keys collide only for
    // removed-and-reinserted edges, and the old side is skipped first.
    let new_m = old_m - removed_ids.len() + ins.len();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(new_m);
    let mut old_to_new = vec![NO_ID; old_m];
    let mut new_to_old: Vec<EdgeId> = Vec::with_capacity(new_m);
    let mut inserted_ids: Vec<EdgeId> = Vec::with_capacity(ins.len());
    let old_edges = g.edges();
    let (mut i, mut j) = (0usize, 0usize);
    while i < old_m || j < ins.len() {
        let take_old = match (old_edges.get(i), ins.get(j)) {
            (Some(oe), Some(ie)) => oe <= ie,
            (Some(_), None) => true,
            _ => false,
        };
        if take_old {
            if !removed_mask[i] {
                old_to_new[i] = edges.len() as EdgeId;
                new_to_old.push(i as EdgeId);
                edges.push(old_edges[i]);
            }
            i += 1;
        } else {
            inserted_ids.push(edges.len() as EdgeId);
            new_to_old.push(NO_ID);
            edges.push(ins[j]);
            j += 1;
        }
    }
    debug_assert_eq!(edges.len(), new_m);
    assert!(new_m <= EdgeId::MAX as usize, "edge count {new_m} exceeds u32 edge-id space");

    // Vertex set: grows to cover every *requested* insert endpoint — even
    // ones whose edge is dropped as a duplicate or self-loop — and never
    // shrinks (bit-identical to a `GraphBuilder` rebuild pinned to the
    // old vertex count).
    let new_n = insert.iter().map(|&(u, v)| u.max(v) as usize + 1).max().unwrap_or(0).max(old_n);

    // Per-vertex insert partners, sorted by neighbor (each inserted edge
    // contributes to both endpoint rows).
    let mut ins_adj: Vec<(VertexId, VertexId, EdgeId)> = Vec::with_capacity(ins.len() * 2);
    for (k, &(u, v)) in ins.iter().enumerate() {
        let e = inserted_ids[k];
        ins_adj.push((u, v, e));
        ins_adj.push((v, u, e));
    }
    ins_adj.sort_unstable();

    // Offsets: old degrees adjusted by the batch.
    let mut deg = vec![0usize; new_n];
    for v in 0..old_n as VertexId {
        deg[v as usize] = g.degree(v);
    }
    for &e in &removed_ids {
        let (u, v) = g.edge_endpoints(e);
        deg[u as usize] -= 1;
        deg[v as usize] -= 1;
    }
    for &(u, v) in &ins {
        deg[u as usize] += 1;
        deg[v as usize] += 1;
    }
    let mut offsets = vec![0usize; new_n + 1];
    for v in 0..new_n {
        offsets[v + 1] = offsets[v] + deg[v];
    }

    // Rows: copy-and-remap untouched entries, merge-splice insert partners.
    let total = offsets[new_n];
    let mut neighbors = vec![0 as VertexId; total];
    let mut adj_edge_ids = vec![0 as EdgeId; total];
    let mut ins_at = 0usize;
    for v in 0..new_n {
        let mut at = offsets[v];
        let mut row_ins = ins_at;
        while row_ins < ins_adj.len() && ins_adj[row_ins].0 as usize == v {
            row_ins += 1;
        }
        let mut pending = &ins_adj[ins_at..row_ins];
        ins_at = row_ins;
        if v < old_n {
            let va = v as VertexId;
            for (w, e) in g.neighbors(va).iter().copied().zip(g.neighbor_edge_ids(va)) {
                let ne = old_to_new[*e as usize];
                if ne == NO_ID {
                    continue; // removed
                }
                while let Some(&(_, iw, ie)) = pending.first() {
                    if iw < w {
                        neighbors[at] = iw;
                        adj_edge_ids[at] = ie;
                        at += 1;
                        pending = &pending[1..];
                    } else {
                        break;
                    }
                }
                neighbors[at] = w;
                adj_edge_ids[at] = ne;
                at += 1;
            }
        }
        for &(_, iw, ie) in pending {
            neighbors[at] = iw;
            adj_edge_ids[at] = ie;
            at += 1;
        }
        debug_assert_eq!(at, offsets[v + 1], "row splice mismatch at vertex {v}");
    }

    let graph = CsrGraph::from_parts(offsets, neighbors, adj_edge_ids, edges);
    (graph, CsrDelta { old_to_new, new_to_old, inserted_ids, removed_ids })
}

/// Triangle-id remaps for one applied batch, plus the maintained list.
#[derive(Clone, Debug)]
pub struct TriangleDelta {
    /// The new graph's triangle list, ids canonical (bit-identical to
    /// `TriangleList::build(new_graph)`).
    pub list: TriangleList,
    /// Old triangle id → new triangle id (`NO_ID` for destroyed).
    pub old_to_new: Vec<u32>,
    /// New triangle id → old triangle id (`NO_ID` for created).
    pub new_to_old: Vec<u32>,
    /// New ids of created triangles, ascending.
    pub created: Vec<u32>,
    /// Old ids of destroyed triangles, ascending.
    pub destroyed: Vec<u32>,
}

/// Maintains `old_tl` across the batch described by `d` (which produced
/// `new_g`).
///
/// Destroyed triangles are read straight off the old incidence lists of
/// the removed edges; created triangles are found by intersecting the new
/// adjacency of each inserted edge (deduplicated by lowest inserted edge
/// id). Survivors keep their relative order, so a linear merge with the
/// sorted created set reproduces canonical ids exactly.
pub fn triangle_delta(old_tl: &TriangleList, new_g: &CsrGraph, d: &CsrDelta) -> TriangleDelta {
    let old_t = old_tl.len();

    // Destroyed: any old triangle incident to a removed edge.
    let mut destroyed_mask = vec![false; old_t];
    for &e in &d.removed_ids {
        for &t in old_tl.triangles_of_edge(e) {
            destroyed_mask[t as usize] = true;
        }
    }
    let destroyed: Vec<u32> = (0..old_t as u32).filter(|&t| destroyed_mask[t as usize]).collect();

    // Created: triangles of the new graph containing an inserted edge,
    // each counted at its lowest-id inserted edge.
    let mut created_tris: Vec<([VertexId; 3], [EdgeId; 3])> = Vec::new();
    for &e in &d.inserted_ids {
        let (u, v) = new_g.edge_endpoints(e);
        let (nu, eu) = (new_g.neighbors(u), new_g.neighbor_edge_ids(u));
        let (nv, ev) = (new_g.neighbors(v), new_g.neighbor_edge_ids(v));
        let (mut a, mut b) = (0usize, 0usize);
        while a < nu.len() && b < nv.len() {
            match nu[a].cmp(&nv[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    let w = nu[a];
                    let (e_uw, e_vw) = (eu[a], ev[b]);
                    a += 1;
                    b += 1;
                    let dup = |x: EdgeId| d.new_to_old[x as usize] == NO_ID && x < e;
                    if dup(e_uw) || dup(e_vw) {
                        continue; // counted at a lower inserted edge
                    }
                    let mut vs = [u, v, w];
                    vs.sort_unstable();
                    let mut es = [0 as EdgeId; 3];
                    for &(x, y, exy) in &[(u, v, e), (u, w, e_uw), (v, w, e_vw)] {
                        let key = (x.min(y), x.max(y));
                        let slot = if key == (vs[0], vs[1]) {
                            0
                        } else if key == (vs[0], vs[2]) {
                            1
                        } else {
                            debug_assert_eq!(key, (vs[1], vs[2]));
                            2
                        };
                        es[slot] = exy;
                    }
                    created_tris.push((vs, es));
                }
            }
        }
    }
    created_tris.sort_unstable_by_key(|&(vs, _)| vs);

    // Merge survivors (old order, edge ids remapped) with created.
    let new_t = old_t - destroyed.len() + created_tris.len();
    let mut tri_verts: Vec<[VertexId; 3]> = Vec::with_capacity(new_t);
    let mut tri_edges: Vec<[EdgeId; 3]> = Vec::with_capacity(new_t);
    let mut old_to_new = vec![NO_ID; old_t];
    let mut new_to_old: Vec<u32> = Vec::with_capacity(new_t);
    let mut created: Vec<u32> = Vec::with_capacity(created_tris.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < old_t || j < created_tris.len() {
        let take_old = match (old_tl.tri_verts.get(i), created_tris.get(j)) {
            // A destroyed triangle and an identical re-created one can
            // collide on the key; skip the old side first.
            (Some(&ov), Some(&(cv, _))) => ov <= cv,
            (Some(_), None) => true,
            _ => false,
        };
        if take_old {
            if !destroyed_mask[i] {
                old_to_new[i] = tri_verts.len() as u32;
                new_to_old.push(i as u32);
                tri_verts.push(old_tl.tri_verts[i]);
                let es = old_tl.tri_edges[i];
                let remap = |e: EdgeId| {
                    let ne = d.old_to_new[e as usize];
                    debug_assert_ne!(ne, NO_ID, "surviving triangle lost an edge");
                    ne
                };
                tri_edges.push([remap(es[0]), remap(es[1]), remap(es[2])]);
            }
            i += 1;
        } else {
            created.push(tri_verts.len() as u32);
            new_to_old.push(NO_ID);
            let (vs, es) = created_tris[j];
            tri_verts.push(vs);
            tri_edges.push(es);
            j += 1;
        }
    }
    debug_assert_eq!(tri_verts.len(), new_t);

    let list = TriangleList::from_sorted_parts(new_g.num_edges(), tri_verts, tri_edges);
    TriangleDelta { list, old_to_new, new_to_old, created, destroyed }
}

/// Marks the new-id triangles whose 4-clique membership the batch changed:
/// members of destroyed K4s that survived, members of created K4s, and all
/// created triangles. Everything unmarked keeps its old K4 containers
/// verbatim (modulo id remap), which is what lets the (3,4) container
/// cache splice instead of re-enumerating.
pub fn mark_k4_touched(
    old_g: &CsrGraph,
    old_tl: &TriangleList,
    new_g: &CsrGraph,
    new_tl: &TriangleList,
    d: &CsrDelta,
    td: &TriangleDelta,
) -> Vec<bool> {
    let mut touched = vec![false; new_tl.len()];
    for &t in &td.created {
        touched[t as usize] = true;
    }

    // Destroyed K4s: for each removed edge (u, v), every pair of common
    // triangles whose thirds (w, x) are themselves adjacent in the old
    // graph closes a K4 {u, v, w, x}.
    let mark_old = |t: u32, touched: &mut Vec<bool>| {
        let nt = td.old_to_new[t as usize];
        if nt != NO_ID {
            touched[nt as usize] = true;
        }
    };
    for &e in &d.removed_ids {
        let (u, v) = old_g.edge_endpoints(e);
        let thirds = old_tl.thirds_of_edge(e);
        let tris = old_tl.triangles_of_edge(e);
        for (iw, &w) in thirds.iter().enumerate() {
            // Intersect old neighbors of w with the higher thirds.
            let nw = old_g.neighbors(w);
            let rest = &thirds[iw + 1..];
            let (mut a, mut b) = (0usize, 0usize);
            while a < nw.len() && b < rest.len() {
                match nw[a].cmp(&rest[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        let x = nw[a];
                        a += 1;
                        b += 1;
                        mark_old(tris[iw], &mut touched);
                        mark_old(tris[iw + 1 + (b - 1)], &mut touched);
                        for &(p, q, r) in &[(u, w, x), (v, w, x)] {
                            if let Some(t) = old_tl.triangle_id(old_g, p, q, r) {
                                mark_old(t, &mut touched);
                            }
                        }
                    }
                }
            }
        }
    }

    // Created K4s: same pattern around each inserted edge, in the new
    // graph. No dedup needed — marking is idempotent.
    for &e in &d.inserted_ids {
        let (u, v) = new_g.edge_endpoints(e);
        let thirds = new_tl.thirds_of_edge(e);
        let tris = new_tl.triangles_of_edge(e);
        for (iw, &w) in thirds.iter().enumerate() {
            let nw = new_g.neighbors(w);
            let rest = &thirds[iw + 1..];
            let (mut a, mut b) = (0usize, 0usize);
            while a < nw.len() && b < rest.len() {
                match nw[a].cmp(&rest[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        let x = nw[a];
                        a += 1;
                        b += 1;
                        touched[tris[iw] as usize] = true;
                        touched[tris[iw + 1 + (b - 1)] as usize] = true;
                        for &(p, q, r) in &[(u, w, x), (v, w, x)] {
                            if let Some(t) = new_tl.triangle_id(new_g, p, q, r) {
                                touched[t as usize] = true;
                            }
                        }
                    }
                }
            }
        }
    }
    touched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{graph_from_edges, GraphBuilder};

    /// Rebuild-from-scratch reference for the same batch semantics.
    fn rebuilt(
        g: &CsrGraph,
        insert: &[(VertexId, VertexId)],
        remove: &[(VertexId, VertexId)],
    ) -> CsrGraph {
        let drop: std::collections::HashSet<(u32, u32)> =
            remove.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
        let n = insert
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0)
            .max(g.num_vertices());
        let mut b = GraphBuilder::with_capacity(g.num_edges() + insert.len()).with_num_vertices(n);
        for &(u, v) in g.edges() {
            if !drop.contains(&(u, v)) {
                b.add_edge(u, v);
            }
        }
        for &(u, v) in insert {
            b.add_edge(u, v);
        }
        b.build()
    }

    fn assert_same_graph(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.edges(), b.edges());
        for v in a.vertices() {
            assert_eq!(a.neighbors(v), b.neighbors(v), "neighbors of {v}");
            assert_eq!(a.neighbor_edge_ids(v), b.neighbor_edge_ids(v), "edge ids of {v}");
        }
    }

    fn two_k4s() -> CsrGraph {
        graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5),
            (5, 6),
        ])
    }

    #[test]
    fn splice_matches_rebuild_on_mixed_batch() {
        let g = two_k4s();
        let ins = [(0, 6), (1, 4), (6, 7), (7, 8)];
        let rm = [(2, 3), (5, 6), (9, 9), (0, 6)]; // (0,6) absent, (9,9) loop
        let (g2, d) = apply_edge_batch(&g, &ins, &rm);
        assert_same_graph(&g2, &rebuilt(&g, &ins, &rm));
        assert_eq!(d.inserted(), 4);
        assert_eq!(d.removed(), 2);
        // Remaps are mutually inverse on survivors.
        for (old, &new) in d.old_to_new.iter().enumerate() {
            if new != NO_ID {
                assert_eq!(d.new_to_old[new as usize] as usize, old);
                assert_eq!(g.edge_endpoints(old as EdgeId), g2.edge_endpoints(new));
            }
        }
        for &e in &d.inserted_ids {
            assert_eq!(d.new_to_old[e as usize], NO_ID);
        }
    }

    #[test]
    fn noop_and_duplicate_batches() {
        let g = two_k4s();
        // Inserting present edges / removing absent ones changes nothing.
        let (g2, d) = apply_edge_batch(&g, &[(0, 1), (1, 0), (3, 3)], &[(0, 6), (6, 0)]);
        assert!(d.is_noop());
        assert_same_graph(&g2, &g);
        assert!(d.old_to_new.iter().enumerate().all(|(i, &e)| e as usize == i));
        // Empty batch.
        let (g3, d3) = apply_edge_batch(&g, &[], &[]);
        assert!(d3.is_noop());
        assert_same_graph(&g3, &g);
    }

    #[test]
    fn remove_and_reinsert_same_edge() {
        let g = two_k4s();
        let (g2, d) = apply_edge_batch(&g, &[(2, 3)], &[(3, 2)]);
        assert_same_graph(&g2, &g);
        assert_eq!(d.inserted(), 1);
        assert_eq!(d.removed(), 1);
        let e_old = g.edge_id(2, 3).unwrap();
        assert_eq!(d.old_to_new[e_old as usize], NO_ID);
        assert_eq!(d.inserted_ids, vec![g2.edge_id(2, 3).unwrap()]);
    }

    #[test]
    fn vertex_set_grows_but_never_shrinks() {
        let g = graph_from_edges([(0, 1), (1, 2)]);
        let (g2, _) = apply_edge_batch(&g, &[(4, 5)], &[(1, 2)]);
        assert_eq!(g2.num_vertices(), 6);
        assert_eq!(g2.degree(2), 0);
        let (g3, _) = apply_edge_batch(&g2, &[], &[(4, 5)]);
        assert_eq!(g3.num_vertices(), 6);
    }

    #[test]
    fn triangle_delta_matches_from_scratch() {
        let g = two_k4s();
        let tl = TriangleList::build(&g);
        let ins = [(0, 4), (1, 6), (0, 6)];
        let rm = [(2, 3), (4, 5)];
        let (g2, d) = apply_edge_batch(&g, &ins, &rm);
        let td = triangle_delta(&tl, &g2, &d);
        let fresh = TriangleList::build(&g2);
        assert_eq!(td.list.tri_verts, fresh.tri_verts);
        assert_eq!(td.list.tri_edges, fresh.tri_edges);
        for e in 0..g2.num_edges() as EdgeId {
            assert_eq!(td.list.triangles_of_edge(e), fresh.triangles_of_edge(e));
            assert_eq!(td.list.thirds_of_edge(e), fresh.thirds_of_edge(e));
        }
        // Remap consistency: survivors keep their vertex triple.
        for (old, &new) in td.old_to_new.iter().enumerate() {
            if new != NO_ID {
                assert_eq!(tl.tri_verts[old], td.list.tri_verts[new as usize]);
                assert_eq!(td.new_to_old[new as usize] as usize, old);
            }
        }
        for &t in &td.created {
            assert_eq!(td.new_to_old[t as usize], NO_ID);
        }
        // Destroyed triangles all contained a removed edge.
        for &t in &td.destroyed {
            let es = tl.tri_edges[t as usize];
            assert!(es.iter().any(|&e| d.old_to_new[e as usize] == NO_ID), "triangle {t}");
        }
    }

    #[test]
    fn k4_touched_covers_all_k4_changes() {
        let g = two_k4s();
        let tl = TriangleList::build(&g);
        // Removing (0,1) destroys the first K4; inserting (1,4),(1,5)
        // creates K4 {1,2,3,4}? (needs 1-4, 2-4, 3-4, 2-3, 1-2, 1-3: yes)
        let ins = [(1, 4), (1, 5)];
        let rm = [(0, 1)];
        let (g2, d) = apply_edge_batch(&g, &ins, &rm);
        let td = triangle_delta(&tl, &g2, &d);
        let touched = mark_k4_touched(&g, &tl, &g2, &td.list, &d, &td);
        // Ground truth: compare K4 counts per surviving triangle.
        let old_counts = crate::cliques4::count_k4_per_triangle(&g, &tl);
        let new_counts = crate::cliques4::count_k4_per_triangle(&g2, &td.list);
        for (new_t, &old_t) in td.new_to_old.iter().enumerate() {
            if old_t != NO_ID && new_counts[new_t] != old_counts[old_t as usize] {
                assert!(touched[new_t], "triangle {new_t} changed K4 count but is unmarked");
            }
        }
        for &t in &td.created {
            assert!(touched[t as usize]);
        }
    }
}
