#![warn(missing_docs)]
//! # hdsd-graph
//!
//! Compact graph substrate for hierarchical dense subgraph discovery.
//!
//! This crate provides the data structures that every algorithm in the
//! workspace is built on:
//!
//! * [`CsrGraph`] — an immutable, undirected simple graph in compressed
//!   sparse row form with stable *edge identifiers* (needed because k-truss
//!   assigns indices to edges, not vertices).
//! * [`GraphBuilder`] — deduplicating, self-loop-removing builder.
//! * [`orientation`] — degree and degeneracy orders and the oriented (DAG)
//!   view used for triangle / 4-clique enumeration without double counting.
//! * [`triangles`] — per-edge triangle counts and a materialized triangle
//!   list with edge-aligned incidence (the (2,3) substrate).
//! * [`cliques4`] — per-triangle 4-clique counts and enumeration (the (3,4)
//!   substrate).
//! * [`delta`] — incremental maintenance: apply a mixed edge batch to an
//!   existing CSR by adjacency splicing (with stable edge-id remaps) and
//!   keep the triangle substrate in sync without re-enumeration.
//! * [`io`] — SNAP-style edge-list reader/writer so the paper's original
//!   datasets can be dropped in unchanged.
//!
//! Vertices are `u32` ids, dense in `0..n`. Edges are `u32` ids, dense in
//! `0..m`, with canonical endpoints `(u, v)`, `u < v`.

pub mod builder;
pub mod cliques4;
pub mod components;
pub mod csr;
pub mod delta;
pub mod io;
pub mod orientation;
pub mod parallel_count;
pub mod subgraph;
pub mod triangles;

pub use builder::{csr_from_canonical_edges, graph_from_edges, GraphBuilder};
pub use cliques4::{
    count_k4_per_triangle, for_each_k4, total_k4, try_for_each_k4_of_triangle, K4List,
};
pub use components::{connected_components, ComponentLabels};
pub use csr::{CsrGraph, EdgeId, VertexId};
pub use delta::{
    apply_edge_batch, mark_k4_touched, triangle_delta, CsrDelta, TriangleDelta, NO_ID,
};
pub use io::{read_edge_list, read_graph_binary, write_edge_list, write_graph_binary};
pub use orientation::{degeneracy_order, degree_order, Orientation, VertexOrder};
pub use parallel_count::{
    count_triangles_per_edge_parallel, total_k4_parallel, total_triangles_parallel,
};
pub use subgraph::{density, induced_subgraph, InducedSubgraph};
pub use triangles::{count_triangles_per_edge, for_each_triangle, total_triangles, TriangleList};
