//! Parallel substrate construction: triangle and 4-clique counting spread
//! over worker threads.
//!
//! The paper notes that the r-clique enumeration preceding the local
//! algorithms "can be parallelized as well" (§4.1); these functions do so
//! by distributing the lowest-ranked vertex of each clique over dynamic
//! chunks, with per-edge counters accumulated through relaxed atomics.
//! Dynamic scheduling matters here too: skewed graphs concentrate most
//! triangles on few vertices.

use hdsd_parallel::{parallel_for_chunks, ParallelConfig};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::csr::{CsrGraph, VertexId};
use crate::orientation::Orientation;
use crate::triangles::for_each_triangle_at;

/// Parallel per-edge triangle counts; equals
/// [`crate::count_triangles_per_edge`] exactly.
pub fn count_triangles_per_edge_parallel(g: &CsrGraph, cfg: ParallelConfig) -> Vec<u32> {
    let orient = Orientation::degeneracy(g);
    let counts: Vec<AtomicU32> = (0..g.num_edges()).map(|_| AtomicU32::new(0)).collect();
    let n = g.num_vertices();
    parallel_for_chunks(n, cfg, |range| {
        for u in range {
            for_each_triangle_at(&orient, u as VertexId, &mut |e1, e2, e3, _| {
                counts[e1 as usize].fetch_add(1, Ordering::Relaxed);
                counts[e2 as usize].fetch_add(1, Ordering::Relaxed);
                counts[e3 as usize].fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    counts.into_iter().map(|c| c.into_inner()).collect()
}

/// Parallel total triangle count; equals [`crate::total_triangles`].
pub fn total_triangles_parallel(g: &CsrGraph, cfg: ParallelConfig) -> u64 {
    let orient = Orientation::degeneracy(g);
    let total = AtomicU64::new(0);
    parallel_for_chunks(g.num_vertices(), cfg, |range| {
        let mut local = 0u64;
        for u in range {
            for_each_triangle_at(&orient, u as VertexId, &mut |_, _, _, _| local += 1);
        }
        if local > 0 {
            total.fetch_add(local, Ordering::Relaxed);
        }
    });
    total.into_inner()
}

/// Parallel total 4-clique count; equals [`crate::total_k4`].
pub fn total_k4_parallel(g: &CsrGraph, cfg: ParallelConfig) -> u64 {
    let orient = Orientation::degeneracy(g);
    let total = AtomicU64::new(0);
    parallel_for_chunks(g.num_vertices(), cfg, |range| {
        let mut local = 0u64;
        for u in range {
            for_each_triangle_at(&orient, u as VertexId, &mut |_, _, _, [a, b, w]| {
                // Extend triangle (a,b,w) by every x above w in rank, as in
                // `for_each_k4`, but scoped to this worker's vertex range.
                let (oa, ob, ow) =
                    (orient.out_neighbors(a), orient.out_neighbors(b), orient.out_neighbors(w));
                let rw = orient.rank(w);
                let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
                while i < oa.len() && j < ob.len() && k < ow.len() {
                    let (ra, rb, rc) = (orient.rank(oa[i]), orient.rank(ob[j]), orient.rank(ow[k]));
                    let rmax = ra.max(rb).max(rc);
                    if rmax <= rw {
                        if ra <= rb && ra <= rc {
                            i += 1;
                        } else if rb <= rc {
                            j += 1;
                        } else {
                            k += 1;
                        }
                        continue;
                    }
                    if ra == rb && rb == rc {
                        local += 1;
                        i += 1;
                        j += 1;
                        k += 1;
                    } else if ra < rmax {
                        i += 1;
                    } else if rb < rmax {
                        j += 1;
                    } else {
                        k += 1;
                    }
                }
            });
        }
        if local > 0 {
            total.fetch_add(local, Ordering::Relaxed);
        }
    });
    total.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::{count_triangles_per_edge, total_k4, total_triangles};

    fn random_graph(seed: u64) -> CsrGraph {
        // Small deterministic pseudo-random graph without pulling in rand.
        let mut state = seed | 1;
        let mut edges = Vec::new();
        for _ in 0..400 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((state >> 33) % 60) as u32;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = ((state >> 33) % 60) as u32;
            edges.push((u, v));
        }
        graph_from_edges(edges)
    }

    #[test]
    fn parallel_counts_match_sequential() {
        for seed in [3u64, 17, 99] {
            let g = random_graph(seed);
            for threads in [1usize, 2, 4] {
                let cfg = ParallelConfig::with_threads(threads).chunk(8);
                assert_eq!(
                    count_triangles_per_edge_parallel(&g, cfg),
                    count_triangles_per_edge(&g),
                    "per-edge, seed {seed} threads {threads}"
                );
                assert_eq!(
                    total_triangles_parallel(&g, cfg),
                    total_triangles(&g),
                    "totals, seed {seed} threads {threads}"
                );
                assert_eq!(
                    total_k4_parallel(&g, cfg),
                    total_k4(&g),
                    "k4, seed {seed} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let cfg = ParallelConfig::with_threads(3);
        let empty = graph_from_edges([]);
        assert_eq!(total_triangles_parallel(&empty, cfg), 0);
        let tri = graph_from_edges([(0, 1), (1, 2), (2, 0)]);
        assert_eq!(total_triangles_parallel(&tri, cfg), 1);
        assert_eq!(total_k4_parallel(&tri, cfg), 0);
        assert_eq!(count_triangles_per_edge_parallel(&tri, cfg), vec![1, 1, 1]);
    }
}
