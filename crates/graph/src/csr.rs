//! Compressed sparse row storage for undirected simple graphs.

/// Dense vertex identifier in `0..n`.
pub type VertexId = u32;
/// Dense edge identifier in `0..m`.
pub type EdgeId = u32;

/// An immutable undirected simple graph in CSR form with stable edge ids.
///
/// Neighbor lists are sorted ascending, and each adjacency slot carries the
/// id of the undirected edge it belongs to, so both directions of an edge
/// share one id. Canonical endpoints of edge `e` satisfy `u < v`.
///
/// The structure is intentionally plain: three flat arrays plus the edge
/// endpoint table. Everything else in the workspace (orientation, triangle
/// and 4-clique enumeration, peeling, the local algorithms) is built on top
/// of slices borrowed from it, which keeps hot loops free of indirection.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
    /// Edge id aligned with `neighbors`.
    adj_edge_ids: Vec<EdgeId>,
    /// Canonical endpoints `(u, v)` with `u < v`, indexed by edge id.
    edges: Vec<(VertexId, VertexId)>,
}

impl CsrGraph {
    /// Assembles a graph from pre-validated CSR parts.
    ///
    /// Callers normally go through [`crate::GraphBuilder`]; this is exposed
    /// for loaders that already produce canonical CSR data.
    ///
    /// # Panics
    /// Panics (debug) if array lengths are inconsistent.
    pub(crate) fn from_parts(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        adj_edge_ids: Vec<EdgeId>,
        edges: Vec<(VertexId, VertexId)>,
    ) -> Self {
        debug_assert_eq!(offsets.last().copied().unwrap_or(0), neighbors.len());
        debug_assert_eq!(neighbors.len(), adj_edge_ids.len());
        debug_assert_eq!(neighbors.len(), edges.len() * 2);
        CsrGraph { offsets, neighbors, adj_edge_ids, edges }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Edge ids aligned with [`Self::neighbors`].
    #[inline]
    pub fn neighbor_edge_ids(&self, v: VertexId) -> &[EdgeId] {
        &self.adj_edge_ids[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Iterates `(neighbor, edge_id)` pairs of `v`.
    #[inline]
    pub fn neighbors_with_edges(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.neighbors(v).iter().copied().zip(self.neighbor_edge_ids(v).iter().copied())
    }

    /// Canonical endpoints `(u, v)` with `u < v` of edge `e`.
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e as usize]
    }

    /// All canonical edges, indexed by edge id.
    #[inline]
    pub fn edges(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Whether `{u, v}` is an edge. `O(log deg)` via binary search on the
    /// smaller endpoint's list.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_id(u, v).is_some()
    }

    /// Edge id of `{u, v}` if present. `O(log deg)`.
    pub fn edge_id(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u == v || u as usize >= self.num_vertices() || v as usize >= self.num_vertices() {
            return None;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        let nbrs = self.neighbors(a);
        nbrs.binary_search(&b).ok().map(|i| self.adj_edge_ids[self.offsets[a as usize] + i])
    }

    /// Iterates all vertex ids.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Maximum degree, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Sum of `min(deg(u), deg(v))` over edges: the classical bound on
    /// triangle-enumeration work. Useful for picking strategies in benches.
    pub fn intersection_work_bound(&self) -> usize {
        self.edges.iter().map(|&(u, v)| self.degree(u).min(self.degree(v))).sum()
    }

    /// Memory footprint of the CSR arrays, in bytes (for reporting).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
            + self.adj_edge_ids.len() * std::mem::size_of::<EdgeId>()
            + self.edges.len() * std::mem::size_of::<(VertexId, VertexId)>()
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn path3() -> crate::CsrGraph {
        GraphBuilder::new().edges([(0, 1), (1, 2)]).build()
    }

    #[test]
    fn basic_accessors() {
        let g = path3();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn edge_id_lookup_is_symmetric() {
        let g = path3();
        let e = g.edge_id(0, 1).unwrap();
        assert_eq!(g.edge_id(1, 0), Some(e));
        assert_eq!(g.edge_endpoints(e), (0, 1));
        assert!(g.edge_id(0, 2).is_none());
        assert!(g.edge_id(0, 0).is_none());
        assert!(g.edge_id(0, 99).is_none());
    }

    #[test]
    fn neighbors_with_edges_align() {
        let g = GraphBuilder::new().edges([(0, 1), (0, 2), (1, 2)]).build();
        for v in g.vertices() {
            for (w, e) in g.neighbors_with_edges(v) {
                let (a, b) = g.edge_endpoints(e);
                assert_eq!((a.min(b), a.max(b)), (v.min(w), v.max(w)));
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }
}
