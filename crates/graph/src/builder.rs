//! Deduplicating builder producing canonical [`CsrGraph`]s.

use crate::csr::{CsrGraph, EdgeId, VertexId};

/// Accumulates an edge list and produces a simple undirected [`CsrGraph`].
///
/// The builder:
/// * drops self loops,
/// * deduplicates parallel edges (input may contain both `(u,v)` and `(v,u)`),
/// * assigns dense edge ids in lexicographic `(u, v)` order with `u < v`,
/// * sizes the vertex set as `max endpoint + 1` unless
///   [`GraphBuilder::with_num_vertices`] forces a larger count (isolated
///   trailing vertices are legal).
///
/// ```
/// use hdsd_graph::GraphBuilder;
/// let g = GraphBuilder::new().edges([(0u32, 1), (1, 0), (1, 1), (2, 1)]).build();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 2); // (0,1) deduped, (1,1) dropped
/// ```
#[derive(Default, Clone, Debug)]
pub struct GraphBuilder {
    raw: Vec<(VertexId, VertexId)>,
    min_vertices: usize,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-reserves capacity for `n` raw edges.
    pub fn with_capacity(n: usize) -> Self {
        GraphBuilder { raw: Vec::with_capacity(n), min_vertices: 0 }
    }

    /// Forces the vertex count to at least `n` even when higher-id vertices
    /// never appear in an edge.
    pub fn with_num_vertices(mut self, n: usize) -> Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Adds one undirected edge; order of endpoints is irrelevant.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.raw.push((u, v));
        self
    }

    /// Adds many edges (builder-style).
    pub fn edges(mut self, it: impl IntoIterator<Item = (VertexId, VertexId)>) -> Self {
        self.raw.extend(it);
        self
    }

    /// Number of raw (pre-dedup) edges currently staged.
    pub fn staged_edges(&self) -> usize {
        self.raw.len()
    }

    /// Finalizes into a canonical CSR graph.
    pub fn build(self) -> CsrGraph {
        let GraphBuilder { mut raw, min_vertices } = self;
        // Canonicalize, drop self loops.
        raw.retain(|&(u, v)| u != v);
        for e in raw.iter_mut() {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        raw.sort_unstable();
        raw.dedup();

        let n = raw.iter().map(|&(_, v)| v as usize + 1).max().unwrap_or(0).max(min_vertices);
        csr_from_canonical_edges(raw, n)
    }
}

/// Builds the CSR arrays straight from an already-canonical edge list:
/// sorted lexicographically, deduplicated, self-loop-free, `u < v`, and
/// every endpoint `< n`. Skips the builder's canonicalization pass, which
/// is what makes loading a stored canonical edge list (snapshots, the
/// binary graph section) linear.
///
/// # Panics
/// Panics (debug) when the list is not canonical; release builds would
/// produce a graph with broken invariants, so callers must validate
/// untrusted input first.
pub fn csr_from_canonical_edges(edges: Vec<(VertexId, VertexId)>, n: usize) -> CsrGraph {
    debug_assert!(edges.is_sorted());
    debug_assert!(edges.windows(2).all(|w| w[0] != w[1]));
    debug_assert!(edges.iter().all(|&(u, v)| u < v && (v as usize) < n));
    assert!(
        edges.len() <= EdgeId::MAX as usize,
        "edge count {} exceeds u32 edge-id space",
        edges.len()
    );

    // Degree histogram -> offsets.
    let mut offsets = vec![0usize; n + 1];
    for &(u, v) in &edges {
        offsets[u as usize + 1] += 1;
        offsets[v as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }

    let mut neighbors = vec![0 as VertexId; edges.len() * 2];
    let mut adj_edge_ids = vec![0 as EdgeId; edges.len() * 2];
    let mut cursor = offsets.clone();
    for (eid, &(u, v)) in edges.iter().enumerate() {
        let cu = cursor[u as usize];
        neighbors[cu] = v;
        adj_edge_ids[cu] = eid as EdgeId;
        cursor[u as usize] += 1;
        let cv = cursor[v as usize];
        neighbors[cv] = u;
        adj_edge_ids[cv] = eid as EdgeId;
        cursor[v as usize] += 1;
    }
    // Edges are sorted lexicographically and slots are filled in that
    // order, so every row comes out sorted already: vertex `w` first
    // receives the lower endpoints `a` of edges `(a, w)` in ascending
    // `a`, then the upper endpoints `b` of edges `(w, b)` in ascending
    // `b`, and every `a < w < b`. No per-vertex sort is needed.
    debug_assert!((0..n).all(|v| neighbors[offsets[v]..offsets[v + 1]].is_sorted()));

    CsrGraph::from_parts(offsets, neighbors, adj_edge_ids, edges)
}

/// Convenience: builds a graph directly from an edge iterator.
pub fn graph_from_edges(it: impl IntoIterator<Item = (VertexId, VertexId)>) -> CsrGraph {
    GraphBuilder::new().edges(it).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_drops_loops() {
        let g = GraphBuilder::new().edges([(1, 0), (0, 1), (2, 2), (1, 2), (2, 1), (0, 1)]).build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn neighbor_lists_sorted_with_matching_eids() {
        let g = GraphBuilder::new().edges([(3, 1), (3, 0), (3, 2), (0, 1)]).build();
        assert_eq!(g.neighbors(3), &[0, 1, 2]);
        for (w, e) in g.neighbors_with_edges(3) {
            let (a, b) = g.edge_endpoints(e);
            assert_eq!((a, b), (w.min(3), w.max(3)));
        }
        let nbrs = g.neighbors(3);
        assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn forced_vertex_count_keeps_isolated_vertices() {
        let g = GraphBuilder::new().with_num_vertices(10).edges([(0, 1)]).build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn edge_ids_are_lexicographic() {
        let g = GraphBuilder::new().edges([(2, 3), (0, 5), (0, 1)]).build();
        assert_eq!(g.edge_endpoints(0), (0, 1));
        assert_eq!(g.edge_endpoints(1), (0, 5));
        assert_eq!(g.edge_endpoints(2), (2, 3));
    }
}
