//! Vertex orders and the oriented (DAG) adjacency view.
//!
//! Triangle and 4-clique enumeration orient each undirected edge from the
//! lower-ranked endpoint to the higher-ranked one under some total order.
//! Each clique is then discovered exactly once, from its lowest-ranked
//! vertex. Degree order is the classical choice for triangle counting;
//! degeneracy order bounds out-degrees by the graph's degeneracy, which is
//! what makes 4-clique enumeration tractable on skewed graphs.

use crate::csr::{CsrGraph, EdgeId, VertexId};

/// A total order on vertices: `rank[v]` is the position of `v`.
#[derive(Clone, Debug)]
pub struct VertexOrder {
    /// `rank[v]` = position of vertex `v` in the order (smaller = earlier).
    pub rank: Vec<u32>,
}

impl VertexOrder {
    /// Builds the order from an explicit permutation `order[i] = vertex`.
    pub fn from_permutation(order: &[VertexId]) -> Self {
        let mut rank = vec![0u32; order.len()];
        for (pos, &v) in order.iter().enumerate() {
            rank[v as usize] = pos as u32;
        }
        VertexOrder { rank }
    }

    /// True when `u` precedes `v`.
    #[inline]
    pub fn before(&self, u: VertexId, v: VertexId) -> bool {
        self.rank[u as usize] < self.rank[v as usize]
    }
}

/// Non-decreasing degree order with vertex id as the tie-breaker.
pub fn degree_order(g: &CsrGraph) -> VertexOrder {
    let n = g.num_vertices();
    let mut verts: Vec<VertexId> = (0..n as VertexId).collect();
    verts.sort_unstable_by_key(|&v| (g.degree(v), v));
    VertexOrder::from_permutation(&verts)
}

/// Degeneracy (smallest-last) order computed by the linear-time bucket
/// peeling of Matula–Beck. Returns the order and the degeneracy value
/// (the maximum core number of the graph).
pub fn degeneracy_order(g: &CsrGraph) -> (VertexOrder, u32) {
    let n = g.num_vertices();
    if n == 0 {
        return (VertexOrder { rank: Vec::new() }, 0);
    }
    let max_deg = g.max_degree();
    let mut deg: Vec<u32> = (0..n as VertexId).map(|v| g.degree(v) as u32).collect();

    // Bucket queue: positions sorted by current degree.
    let mut bucket_start = vec![0usize; max_deg + 2];
    for &d in &deg {
        bucket_start[d as usize + 1] += 1;
    }
    for i in 0..=max_deg {
        bucket_start[i + 1] += bucket_start[i];
    }
    let mut pos_of = vec![0usize; n];
    let mut vert_at = vec![0 as VertexId; n];
    {
        let mut cursor = bucket_start.clone();
        for v in 0..n {
            let d = deg[v] as usize;
            pos_of[v] = cursor[d];
            vert_at[cursor[d]] = v as VertexId;
            cursor[d] += 1;
        }
    }
    // bucket_start[d] = first position whose vertex currently has degree d.
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0u32;
    let mut removed = vec![false; n];
    for i in 0..n {
        let v = vert_at[i];
        removed[v as usize] = true;
        degeneracy = degeneracy.max(deg[v as usize]);
        order.push(v);
        for &w in g.neighbors(v) {
            let wi = w as usize;
            if removed[wi] || deg[wi] == 0 {
                continue;
            }
            // Swap w to the front of its bucket, then shrink its degree.
            let dw = deg[wi] as usize;
            let front = bucket_start[dw].max(i + 1);
            let pw = pos_of[wi];
            if pw != front {
                let other = vert_at[front];
                vert_at.swap(pw, front);
                pos_of[other as usize] = pw;
                pos_of[wi] = front;
            }
            bucket_start[dw] = front + 1;
            deg[wi] -= 1;
        }
    }
    (VertexOrder::from_permutation(&order), degeneracy)
}

/// Oriented adjacency: for each vertex, the neighbors that come *after* it
/// in a [`VertexOrder`], with the matching undirected edge ids. Out-lists
/// are sorted by the order's rank so intersections can run merge-style.
#[derive(Clone, Debug)]
pub struct Orientation {
    offsets: Vec<usize>,
    /// Out-neighbors, sorted by rank.
    out: Vec<VertexId>,
    /// Undirected edge ids aligned with `out`.
    out_eids: Vec<EdgeId>,
    order: VertexOrder,
}

impl Orientation {
    /// Orients `g` under `order`.
    pub fn new(g: &CsrGraph, order: VertexOrder) -> Self {
        let n = g.num_vertices();
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n as VertexId {
            let c = g.neighbors(v).iter().filter(|&&w| order.before(v, w)).count();
            offsets[v as usize + 1] = c;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut out = vec![0 as VertexId; offsets[n]];
        let mut out_eids = vec![0 as EdgeId; offsets[n]];
        for v in 0..n as VertexId {
            let mut pairs: Vec<(u32, VertexId, EdgeId)> = g
                .neighbors_with_edges(v)
                .filter(|&(w, _)| order.before(v, w))
                .map(|(w, e)| (order.rank[w as usize], w, e))
                .collect();
            pairs.sort_unstable();
            let lo = offsets[v as usize];
            for (i, (_, w, e)) in pairs.into_iter().enumerate() {
                out[lo + i] = w;
                out_eids[lo + i] = e;
            }
        }
        Orientation { offsets, out, out_eids, order }
    }

    /// Orients by degeneracy order (the default for clique enumeration).
    pub fn degeneracy(g: &CsrGraph) -> Self {
        let (order, _) = degeneracy_order(g);
        Self::new(g, order)
    }

    /// Orients by degree order.
    pub fn degree(g: &CsrGraph) -> Self {
        Self::new(g, degree_order(g))
    }

    /// Out-neighbors of `v` (later in the order), sorted by rank.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.out[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Edge ids aligned with [`Self::out_neighbors`].
    #[inline]
    pub fn out_edge_ids(&self, v: VertexId) -> &[EdgeId] {
        &self.out_eids[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// The underlying order.
    #[inline]
    pub fn order(&self) -> &VertexOrder {
        &self.order
    }

    /// Rank of vertex `v` in the underlying order.
    #[inline]
    pub fn rank(&self, v: VertexId) -> u32 {
        self.order.rank[v as usize]
    }

    /// Maximum out-degree (≤ degeneracy when degeneracy-ordered).
    pub fn max_out_degree(&self) -> usize {
        (0..self.offsets.len() - 1)
            .map(|v| self.offsets[v + 1] - self.offsets[v])
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn k4() -> CsrGraph {
        graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn degree_order_sorts_by_degree() {
        // star: center 0 has degree 3, leaves degree 1
        let g = graph_from_edges([(0, 1), (0, 2), (0, 3)]);
        let ord = degree_order(&g);
        for leaf in 1..4 {
            assert!(ord.before(leaf, 0));
        }
    }

    #[test]
    fn degeneracy_of_complete_graph() {
        let (_, d) = degeneracy_order(&k4());
        assert_eq!(d, 3);
    }

    #[test]
    fn degeneracy_of_tree_is_one() {
        let g = graph_from_edges([(0, 1), (1, 2), (1, 3), (3, 4)]);
        let (_, d) = degeneracy_order(&g);
        assert_eq!(d, 1);
    }

    #[test]
    fn degeneracy_of_cycle_is_two() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]);
        let (_, d) = degeneracy_order(&g);
        assert_eq!(d, 2);
    }

    #[test]
    fn orientation_covers_each_edge_once() {
        let g = k4();
        let o = Orientation::degeneracy(&g);
        let mut seen = vec![false; g.num_edges()];
        for v in g.vertices() {
            for &e in o.out_edge_ids(v) {
                assert!(!seen[e as usize], "edge {} oriented twice", e);
                seen[e as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn out_lists_sorted_by_rank() {
        let g = k4();
        let o = Orientation::degree(&g);
        for v in g.vertices() {
            let ranks: Vec<u32> = o.out_neighbors(v).iter().map(|&w| o.rank(w)).collect();
            assert!(ranks.windows(2).all(|w| w[0] < w[1]));
            for &w in o.out_neighbors(v) {
                assert!(o.rank(w) > o.rank(v));
            }
        }
    }

    #[test]
    fn degeneracy_bounds_out_degree() {
        // Random-ish sparse graph: a few overlapping triangles.
        let g = graph_from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (4, 5), (5, 0)]);
        let (ord, d) = degeneracy_order(&g);
        let o = Orientation::new(&g, VertexOrder { rank: ord.rank.clone() });
        assert!(o.max_out_degree() <= d as usize);
    }
}
