//! Triangle counting, enumeration, and the edge↔triangle incidence used by
//! the (2,3) (k-truss) and (3,4) nucleus substrates.
//!
//! Enumeration orients the graph (degeneracy order by default) and, for each
//! oriented edge `u -> v`, merge-intersects the rank-sorted out-lists of `u`
//! and `v`. Every triangle is produced exactly once, from its two
//! lowest-ranked vertices.

use crate::csr::{CsrGraph, EdgeId, VertexId};
use crate::orientation::Orientation;

/// Calls `f(eid_uv, eid_uw, eid_vw, [u, v, w])` once per triangle, where
/// `rank(u) < rank(v) < rank(w)` under the orientation's order. Vertex ids
/// themselves are arbitrary.
pub fn for_each_triangle(
    g: &CsrGraph,
    orient: &Orientation,
    mut f: impl FnMut(EdgeId, EdgeId, EdgeId, [VertexId; 3]),
) {
    for u in g.vertices() {
        for_each_triangle_at(orient, u, &mut f);
    }
}

/// Triangles whose lowest-ranked vertex is `u` (the unit the parallel
/// counters distribute over workers).
#[inline]
pub(crate) fn for_each_triangle_at(
    orient: &Orientation,
    u: VertexId,
    f: &mut impl FnMut(EdgeId, EdgeId, EdgeId, [VertexId; 3]),
) {
    let ou = orient.out_neighbors(u);
    let oe = orient.out_edge_ids(u);
    for (i, (&v, &e_uv)) in ou.iter().zip(oe.iter()).enumerate() {
        let ov = orient.out_neighbors(v);
        let ove = orient.out_edge_ids(v);
        // Merge out(u)[i+1..] with out(v), both sorted by rank.
        let (mut a, mut b) = (i + 1, 0usize);
        while a < ou.len() && b < ov.len() {
            let (wa, wb) = (ou[a], ov[b]);
            let (ra, rb) = (orient.rank(wa), orient.rank(wb));
            if ra < rb {
                a += 1;
            } else if rb < ra {
                b += 1;
            } else {
                f(e_uv, oe[a], ove[b], [u, v, wa]);
                a += 1;
                b += 1;
            }
        }
    }
}

/// Per-edge triangle counts (the `d_3` / initial τ values of k-truss).
pub fn count_triangles_per_edge(g: &CsrGraph) -> Vec<u32> {
    let orient = Orientation::degeneracy(g);
    let mut counts = vec![0u32; g.num_edges()];
    for_each_triangle(g, &orient, |e1, e2, e3, _| {
        counts[e1 as usize] += 1;
        counts[e2 as usize] += 1;
        counts[e3 as usize] += 1;
    });
    counts
}

/// Total triangle count `|△|`.
pub fn total_triangles(g: &CsrGraph) -> u64 {
    let orient = Orientation::degeneracy(g);
    let mut n = 0u64;
    for_each_triangle(g, &orient, |_, _, _, _| n += 1);
    n
}

/// Materialized triangle list plus edge↔triangle incidence.
///
/// This is the hypergraph view of the (2,3) decomposition and the r-clique
/// universe of the (3,4) decomposition. Incidence lists per edge are sorted
/// by the id of the opposite vertex, enabling the `O(log △_e)` triangle-id
/// lookup that 4-clique enumeration relies on.
///
/// Triangle ids are **canonical**: triangles are numbered in lexicographic
/// order of their sorted vertex triples, independent of the enumeration
/// orientation. This is what makes ids maintainable under edge updates —
/// [`crate::delta::triangle_delta`] can splice destroyed/created triangles
/// into the sorted list and land on exactly the ids a from-scratch build
/// of the new graph would assign.
#[derive(Clone, Debug)]
pub struct TriangleList {
    /// Vertices of each triangle, sorted ascending by id.
    pub tri_verts: Vec<[VertexId; 3]>,
    /// Edge ids of each triangle (uv, uw, vw for sorted u<v<w).
    pub tri_edges: Vec<[EdgeId; 3]>,
    /// CSR offsets: triangles incident to each edge.
    edge_tri_offsets: Vec<usize>,
    /// Triangle ids per edge, sorted by opposite-vertex id.
    edge_tris: Vec<u32>,
    /// Opposite vertex per (edge, triangle) incidence, aligned with `edge_tris`.
    edge_tri_third: Vec<VertexId>,
}

impl TriangleList {
    /// Builds the list with a degeneracy orientation.
    pub fn build(g: &CsrGraph) -> Self {
        Self::build_with(g, &Orientation::degeneracy(g))
    }

    /// Builds the list under a caller-provided orientation.
    pub fn build_with(g: &CsrGraph, orient: &Orientation) -> Self {
        let mut tri_verts: Vec<[VertexId; 3]> = Vec::new();
        let mut tri_edges: Vec<[EdgeId; 3]> = Vec::new();
        for_each_triangle(g, orient, |e_uv, e_uw, e_vw, [u, v, w]| {
            let mut vs = [u, v, w];
            vs.sort_unstable();
            // Map edges to the sorted-vertex convention: edges of (a,b,c)
            // stored as [ab, ac, bc].
            let (a, b, c) = (vs[0], vs[1], vs[2]);
            let mut es = [0 as EdgeId; 3];
            for &e in &[e_uv, e_uw, e_vw] {
                let (x, y) = g.edge_endpoints(e);
                let slot = if (x, y) == (a, b) {
                    0
                } else if (x, y) == (a, c) {
                    1
                } else {
                    debug_assert_eq!((x, y), (b, c));
                    2
                };
                es[slot] = e;
            }
            tri_verts.push(vs);
            tri_edges.push(es);
        });

        // Canonicalize: ids follow the lexicographic order of the vertex
        // triples, not the orientation's discovery order.
        let mut perm: Vec<u32> = (0..tri_verts.len() as u32).collect();
        perm.sort_unstable_by_key(|&t| tri_verts[t as usize]);
        let tri_verts: Vec<[VertexId; 3]> = perm.iter().map(|&t| tri_verts[t as usize]).collect();
        let tri_edges: Vec<[EdgeId; 3]> = perm.iter().map(|&t| tri_edges[t as usize]).collect();

        Self::from_sorted_parts(g.num_edges(), tri_verts, tri_edges)
    }

    /// Assembles a list from canonical parts: `tri_verts` sorted
    /// lexicographically (each triple itself ascending) with `tri_edges`
    /// aligned (`[ab, ac, bc]` for sorted vertices `a < b < c`). Builds the
    /// edge↔triangle incidence; `m` is the graph's edge count.
    ///
    /// Shared by [`TriangleList::build_with`] and the incremental
    /// maintenance in [`crate::delta`].
    pub(crate) fn from_sorted_parts(
        m: usize,
        tri_verts: Vec<[VertexId; 3]>,
        tri_edges: Vec<[EdgeId; 3]>,
    ) -> Self {
        assert!(
            tri_verts.len() <= u32::MAX as usize,
            "triangle count {} exceeds u32 id space",
            tri_verts.len()
        );
        debug_assert!(tri_verts.is_sorted());

        // Edge -> triangle incidence.
        let mut edge_tri_offsets = vec![0usize; m + 1];
        for es in &tri_edges {
            for &e in es {
                edge_tri_offsets[e as usize + 1] += 1;
            }
        }
        for i in 0..m {
            edge_tri_offsets[i + 1] += edge_tri_offsets[i];
        }
        let total = edge_tri_offsets[m];
        let mut edge_tris = vec![0u32; total];
        let mut edge_tri_third = vec![0 as VertexId; total];
        let mut cursor = edge_tri_offsets.clone();
        for (t, (vs, es)) in tri_verts.iter().zip(tri_edges.iter()).enumerate() {
            let thirds = [vs[2], vs[1], vs[0]]; // opposite of ab, ac, bc
            for (slot, &e) in es.iter().enumerate() {
                let c = cursor[e as usize];
                edge_tris[c] = t as u32;
                edge_tri_third[c] = thirds[slot];
                cursor[e as usize] += 1;
            }
        }
        // Sort each edge's incidence by opposite vertex id for binary search.
        for e in 0..m {
            let lo = edge_tri_offsets[e];
            let hi = edge_tri_offsets[e + 1];
            let mut pairs: Vec<(VertexId, u32)> = edge_tri_third[lo..hi]
                .iter()
                .copied()
                .zip(edge_tris[lo..hi].iter().copied())
                .collect();
            pairs.sort_unstable();
            for (i, (third, t)) in pairs.into_iter().enumerate() {
                edge_tri_third[lo + i] = third;
                edge_tris[lo + i] = t;
            }
        }

        TriangleList { tri_verts, tri_edges, edge_tri_offsets, edge_tris, edge_tri_third }
    }

    /// Number of triangles.
    #[inline]
    pub fn len(&self) -> usize {
        self.tri_verts.len()
    }

    /// True when the graph is triangle-free.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tri_verts.is_empty()
    }

    /// Triangle ids incident to edge `e`.
    #[inline]
    pub fn triangles_of_edge(&self, e: EdgeId) -> &[u32] {
        &self.edge_tris[self.edge_tri_offsets[e as usize]..self.edge_tri_offsets[e as usize + 1]]
    }

    /// Opposite vertices aligned with [`Self::triangles_of_edge`].
    #[inline]
    pub fn thirds_of_edge(&self, e: EdgeId) -> &[VertexId] {
        &self.edge_tri_third
            [self.edge_tri_offsets[e as usize]..self.edge_tri_offsets[e as usize + 1]]
    }

    /// Triangle count of edge `e` (its `d_3`).
    #[inline]
    pub fn edge_triangle_count(&self, e: EdgeId) -> u32 {
        (self.edge_tri_offsets[e as usize + 1] - self.edge_tri_offsets[e as usize]) as u32
    }

    /// Looks up the id of triangle `{a, b, c}`; `None` if absent.
    /// `O(log △_e)` on the `{a,b}` edge's incidence list.
    pub fn triangle_id(&self, g: &CsrGraph, a: VertexId, b: VertexId, c: VertexId) -> Option<u32> {
        let e = g.edge_id(a, b)?;
        let thirds = self.thirds_of_edge(e);
        thirds.binary_search(&c).ok().map(|i| self.edge_tris[self.edge_tri_offsets[e as usize] + i])
    }

    /// For each triangle incident to edge `e`, the other two edge ids.
    pub fn partner_edges(&self, e: EdgeId) -> impl Iterator<Item = [EdgeId; 2]> + '_ {
        self.triangles_of_edge(e).iter().map(move |&t| {
            let es = self.tri_edges[t as usize];
            let mut out = [0 as EdgeId; 2];
            let mut k = 0;
            for &x in &es {
                if x != e {
                    out[k] = x;
                    k += 1;
                }
            }
            debug_assert_eq!(k, 2);
            out
        })
    }

    /// Heap bytes used (for memory reporting in benches).
    pub fn heap_bytes(&self) -> usize {
        self.tri_verts.len() * 12
            + self.tri_edges.len() * 12
            + self.edge_tri_offsets.len() * std::mem::size_of::<usize>()
            + self.edge_tris.len() * 4
            + self.edge_tri_third.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn k4() -> CsrGraph {
        graph_from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn k4_has_four_triangles() {
        let g = k4();
        assert_eq!(total_triangles(&g), 4);
        let counts = count_triangles_per_edge(&g);
        // every edge of K4 is in exactly 2 triangles
        assert!(counts.iter().all(|&c| c == 2));
    }

    #[test]
    fn triangle_free_graph() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]); // C4
        assert_eq!(total_triangles(&g), 0);
        let tl = TriangleList::build(&g);
        assert!(tl.is_empty());
        for e in 0..g.num_edges() as u32 {
            assert_eq!(tl.edge_triangle_count(e), 0);
        }
    }

    #[test]
    fn list_matches_counts() {
        let g = k4();
        let tl = TriangleList::build(&g);
        let counts = count_triangles_per_edge(&g);
        for e in 0..g.num_edges() as u32 {
            assert_eq!(tl.edge_triangle_count(e), counts[e as usize]);
        }
        assert_eq!(tl.len() as u64, total_triangles(&g));
    }

    #[test]
    fn triangle_vertices_sorted_and_edges_consistent() {
        let g = k4();
        let tl = TriangleList::build(&g);
        for (vs, es) in tl.tri_verts.iter().zip(tl.tri_edges.iter()) {
            assert!(vs[0] < vs[1] && vs[1] < vs[2]);
            assert_eq!(g.edge_endpoints(es[0]), (vs[0], vs[1]));
            assert_eq!(g.edge_endpoints(es[1]), (vs[0], vs[2]));
            assert_eq!(g.edge_endpoints(es[2]), (vs[1], vs[2]));
        }
    }

    #[test]
    fn triangle_id_lookup() {
        let g = k4();
        let tl = TriangleList::build(&g);
        for (t, vs) in tl.tri_verts.iter().enumerate() {
            assert_eq!(tl.triangle_id(&g, vs[0], vs[1], vs[2]), Some(t as u32));
        }
        // Non-triangle lookups fail.
        let g2 = graph_from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let tl2 = TriangleList::build(&g2);
        assert_eq!(tl2.triangle_id(&g2, 0, 1, 3), None);
        assert_eq!(tl2.triangle_id(&g2, 0, 1, 2), Some(0));
    }

    #[test]
    fn partner_edges_cover_triangle() {
        let g = k4();
        let tl = TriangleList::build(&g);
        for e in 0..g.num_edges() as u32 {
            for partners in tl.partner_edges(e) {
                assert_ne!(partners[0], e);
                assert_ne!(partners[1], e);
                assert_ne!(partners[0], partners[1]);
            }
            assert_eq!(tl.partner_edges(e).count(), 2);
        }
    }

    #[test]
    fn bowtie_counts() {
        // Two triangles sharing vertex 2.
        let g = graph_from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        assert_eq!(total_triangles(&g), 2);
        let counts = count_triangles_per_edge(&g);
        assert!(counts.iter().all(|&c| c == 1));
    }
}
