//! 4-clique (K4) counting and enumeration: the s-clique side of the (3,4)
//! nucleus decomposition.
//!
//! A K4 `{u, v, w, x}` with `rank(u) < rank(v) < rank(w) < rank(x)` is found
//! exactly once by extending the triangle `(u, v, w)` (itself found once)
//! with every `x` in the triple intersection of the out-lists of `u`, `v`
//! and `w`.

use crate::csr::{CsrGraph, VertexId};
use crate::orientation::Orientation;
use crate::triangles::{for_each_triangle, TriangleList};

/// Calls `f([u, v, w, x])` once per 4-clique, ranks ascending.
pub fn for_each_k4(g: &CsrGraph, orient: &Orientation, mut f: impl FnMut([VertexId; 4])) {
    for_each_triangle(g, orient, |_, _, _, [u, v, w]| {
        let (ou, ov, ow) =
            (orient.out_neighbors(u), orient.out_neighbors(v), orient.out_neighbors(w));
        // Three-way merge on rank-sorted lists, skipping past rank(w).
        let rw = orient.rank(w);
        let (mut a, mut b, mut c) = (0usize, 0usize, 0usize);
        while a < ou.len() && b < ov.len() && c < ow.len() {
            let (ra, rb, rc) = (orient.rank(ou[a]), orient.rank(ov[b]), orient.rank(ow[c]));
            let rmax = ra.max(rb).max(rc);
            if rmax <= rw {
                // candidates must rank above w; advance the minimum
                if ra <= rb && ra <= rc {
                    a += 1;
                } else if rb <= rc {
                    b += 1;
                } else {
                    c += 1;
                }
                continue;
            }
            if ra == rb && rb == rc {
                f([u, v, w, ou[a]]);
                a += 1;
                b += 1;
                c += 1;
            } else if ra < rmax {
                a += 1;
            } else if rb < rmax {
                b += 1;
            } else {
                c += 1;
            }
        }
    });
}

/// Total 4-clique count `|K4|`.
pub fn total_k4(g: &CsrGraph) -> u64 {
    let orient = Orientation::degeneracy(g);
    let mut n = 0u64;
    for_each_k4(g, &orient, |_| n += 1);
    n
}

/// Per-triangle K4 participation counts (the `d_4` / initial τ values of
/// the (3,4) decomposition), indexed by triangle id of `tl`.
pub fn count_k4_per_triangle(g: &CsrGraph, tl: &TriangleList) -> Vec<u32> {
    let orient = Orientation::degeneracy(g);
    let mut counts = vec![0u32; tl.len()];
    for_each_k4(g, &orient, |vs| {
        for t in k4_triangle_ids(g, tl, vs) {
            counts[t as usize] += 1;
        }
    });
    counts
}

/// The four triangle ids contained in K4 `{a,b,c,d}` (any vertex order).
///
/// # Panics
/// Panics if the quadruple is not actually a K4 of `g` / `tl`.
pub fn k4_triangle_ids(g: &CsrGraph, tl: &TriangleList, mut vs: [VertexId; 4]) -> [u32; 4] {
    vs.sort_unstable();
    let [a, b, c, d] = vs;
    [
        tl.triangle_id(g, a, b, c).expect("triangle abc of K4"),
        tl.triangle_id(g, a, b, d).expect("triangle abd of K4"),
        tl.triangle_id(g, a, c, d).expect("triangle acd of K4"),
        tl.triangle_id(g, b, c, d).expect("triangle bcd of K4"),
    ]
}

/// Calls `f([t_abd, t_acd, t_bcd])` for every 4-clique containing triangle
/// `t` of `tl` — the ids of the *other three* triangles of that K4, in the
/// sorted-vertex slot convention. Extension vertices are visited in
/// ascending id order. Stops early when `f` breaks.
///
/// This is the on-the-fly (3,4) container walk, shared by the
/// `Nucleus34Space` sweep path and the incremental container-cache splice
/// (which re-derives only batch-touched rows through it).
pub fn try_for_each_k4_of_triangle<F>(
    g: &CsrGraph,
    tl: &TriangleList,
    t: usize,
    mut f: F,
) -> std::ops::ControlFlow<()>
where
    F: FnMut([u32; 3]) -> std::ops::ControlFlow<()>,
{
    let [a, b, c] = tl.tri_verts[t];
    let (na, nb, nc) = (g.neighbors(a), g.neighbors(b), g.neighbors(c));
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < na.len() && j < nb.len() && k < nc.len() {
        let (x, y, z) = (na[i], nb[j], nc[k]);
        let max = x.max(y).max(z);
        if x == y && y == z {
            // The other three triangles of K4 {a, b, c, x}.
            let t_abd = tl.triangle_id(g, a, b, x);
            let t_acd = tl.triangle_id(g, a, c, x);
            let t_bcd = tl.triangle_id(g, b, c, x);
            match (t_abd, t_acd, t_bcd) {
                (Some(p), Some(q), Some(r)) => f([p, q, r])?,
                _ => unreachable!("extension vertex must close all three triangles"),
            }
            i += 1;
            j += 1;
            k += 1;
        } else {
            if x < max {
                i += 1;
            }
            if y < max {
                j += 1;
            }
            if z < max {
                k += 1;
            }
        }
    }
    std::ops::ControlFlow::Continue(())
}

/// Materialized K4 list with triangle↔K4 incidence, for the precomputed
/// (3,4) substrate.
#[derive(Clone, Debug)]
pub struct K4List {
    /// Triangle ids of each K4: `[abc, abd, acd, bcd]` for sorted vertices.
    pub quad_tris: Vec<[u32; 4]>,
    /// Vertices of each K4, sorted ascending.
    pub quad_verts: Vec<[VertexId; 4]>,
    tri_k4_offsets: Vec<usize>,
    tri_k4: Vec<u32>,
}

impl K4List {
    /// Builds the list (degeneracy orientation).
    pub fn build(g: &CsrGraph, tl: &TriangleList) -> Self {
        let orient = Orientation::degeneracy(g);
        let mut quad_tris: Vec<[u32; 4]> = Vec::new();
        let mut quad_verts: Vec<[VertexId; 4]> = Vec::new();
        for_each_k4(g, &orient, |mut vs| {
            vs.sort_unstable();
            quad_tris.push(k4_triangle_ids(g, tl, vs));
            quad_verts.push(vs);
        });
        assert!(
            quad_tris.len() <= u32::MAX as usize,
            "K4 count {} exceeds u32 id space",
            quad_tris.len()
        );
        let nt = tl.len();
        let mut tri_k4_offsets = vec![0usize; nt + 1];
        for q in &quad_tris {
            for &t in q {
                tri_k4_offsets[t as usize + 1] += 1;
            }
        }
        for i in 0..nt {
            tri_k4_offsets[i + 1] += tri_k4_offsets[i];
        }
        let mut tri_k4 = vec![0u32; tri_k4_offsets[nt]];
        let mut cursor = tri_k4_offsets.clone();
        for (qid, q) in quad_tris.iter().enumerate() {
            for &t in q {
                tri_k4[cursor[t as usize]] = qid as u32;
                cursor[t as usize] += 1;
            }
        }
        K4List { quad_tris, quad_verts, tri_k4_offsets, tri_k4 }
    }

    /// Number of 4-cliques.
    #[inline]
    pub fn len(&self) -> usize {
        self.quad_tris.len()
    }

    /// True when the graph has no 4-cliques.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.quad_tris.is_empty()
    }

    /// K4 ids containing triangle `t`.
    #[inline]
    pub fn k4s_of_triangle(&self, t: u32) -> &[u32] {
        &self.tri_k4[self.tri_k4_offsets[t as usize]..self.tri_k4_offsets[t as usize + 1]]
    }

    /// K4 participation count of triangle `t`.
    #[inline]
    pub fn triangle_k4_count(&self, t: u32) -> u32 {
        (self.tri_k4_offsets[t as usize + 1] - self.tri_k4_offsets[t as usize]) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn complete(n: u32) -> CsrGraph {
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                edges.push((u, v));
            }
        }
        graph_from_edges(edges)
    }

    fn binom4(n: u64) -> u64 {
        if n < 4 {
            0
        } else {
            n * (n - 1) * (n - 2) * (n - 3) / 24
        }
    }

    #[test]
    fn complete_graph_counts() {
        for n in 4..9u32 {
            let g = complete(n);
            assert_eq!(total_k4(&g), binom4(n as u64), "K{n}");
        }
    }

    #[test]
    fn k4_free_graphs() {
        // C5 has no triangles, hence no K4.
        let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(total_k4(&g), 0);
        // A single triangle has no K4.
        let t = graph_from_edges([(0, 1), (1, 2), (2, 0)]);
        assert_eq!(total_k4(&t), 0);
    }

    #[test]
    fn per_triangle_counts_in_k5() {
        let g = complete(5);
        let tl = TriangleList::build(&g);
        let counts = count_k4_per_triangle(&g, &tl);
        // In K5 every triangle extends to a K4 with each of the 2 remaining
        // vertices.
        assert_eq!(counts.len(), 10);
        assert!(counts.iter().all(|&c| c == 2));
    }

    #[test]
    fn k4list_matches_counts() {
        let g = complete(6);
        let tl = TriangleList::build(&g);
        let counts = count_k4_per_triangle(&g, &tl);
        let kl = K4List::build(&g, &tl);
        assert_eq!(kl.len() as u64, total_k4(&g));
        for t in 0..tl.len() as u32 {
            assert_eq!(kl.triangle_k4_count(t), counts[t as usize]);
        }
    }

    #[test]
    fn quad_triangle_ids_are_distinct_and_valid() {
        let g = complete(5);
        let tl = TriangleList::build(&g);
        let kl = K4List::build(&g, &tl);
        for q in &kl.quad_tris {
            let mut s = q.to_vec();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 4);
            for &t in q {
                assert!((t as usize) < tl.len());
            }
        }
    }

    #[test]
    fn two_overlapping_k4s() {
        // K4 on {0,1,2,3} and K4 on {2,3,4,5} sharing edge (2,3).
        let g = graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5),
        ]);
        assert_eq!(total_k4(&g), 2);
        let tl = TriangleList::build(&g);
        let counts = count_k4_per_triangle(&g, &tl);
        // Triangles {0,1,2},... of the first K4 have count 1; triangle (2,3,x)
        // also count 1; no triangle belongs to two K4s here.
        assert_eq!(counts.iter().filter(|&&c| c == 1).count(), 8);
        assert_eq!(counts.iter().filter(|&&c| c == 0).count(), counts.len() - 8);
    }
}
