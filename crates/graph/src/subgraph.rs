//! Induced subgraphs and density, used when materializing nuclei.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};

/// An induced subgraph together with the mapping back to the parent graph.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The subgraph, with vertices renumbered `0..k`.
    pub graph: CsrGraph,
    /// `original[i]` = parent-graph id of subgraph vertex `i`.
    pub original: Vec<VertexId>,
}

impl InducedSubgraph {
    /// Density `2|E| / (|V| (|V|-1))` of the subgraph.
    pub fn density(&self) -> f64 {
        density(&self.graph)
    }
}

/// Extracts the subgraph induced by `verts` (need not be sorted or unique).
pub fn induced_subgraph(g: &CsrGraph, verts: &[VertexId]) -> InducedSubgraph {
    let mut original: Vec<VertexId> = verts.to_vec();
    original.sort_unstable();
    original.dedup();
    let mut local = vec![u32::MAX; g.num_vertices()];
    for (i, &v) in original.iter().enumerate() {
        local[v as usize] = i as u32;
    }
    let mut b = GraphBuilder::new().with_num_vertices(original.len());
    for &v in &original {
        for &w in g.neighbors(v) {
            if w > v && local[w as usize] != u32::MAX {
                b.add_edge(local[v as usize], local[w as usize]);
            }
        }
    }
    InducedSubgraph { graph: b.build(), original }
}

/// Graph density `2|E| / (|V| (|V|-1))`; `0.0` when `|V| < 2`.
/// This is the density definition the paper uses to compare nuclei quality.
pub fn density(g: &CsrGraph) -> f64 {
    let n = g.num_vertices() as f64;
    if n < 2.0 {
        return 0.0;
    }
    2.0 * g.num_edges() as f64 / (n * (n - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn induced_triangle_from_k4_plus_tail() {
        let g = graph_from_edges([(0, 1), (0, 2), (1, 2), (2, 3), (0, 3), (1, 3), (3, 4)]);
        let sub = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(sub.graph.num_vertices(), 3);
        assert_eq!(sub.graph.num_edges(), 3);
        assert_eq!(sub.original, vec![0, 1, 2]);
        assert!((sub.density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn density_values() {
        let triangle = graph_from_edges([(0, 1), (1, 2), (2, 0)]);
        assert!((density(&triangle) - 1.0).abs() < 1e-12);
        let path = graph_from_edges([(0, 1), (1, 2)]);
        assert!((density(&path) - 2.0 / 3.0).abs() < 1e-12);
        let single = GraphBuilder::new().with_num_vertices(1).build();
        assert_eq!(density(&single), 0.0);
    }

    #[test]
    fn duplicate_and_unsorted_vertex_input() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 0)]);
        let sub = induced_subgraph(&g, &[2, 0, 2, 1, 0]);
        assert_eq!(sub.graph.num_edges(), 3);
    }

    #[test]
    fn mapping_preserves_adjacency() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let sub = induced_subgraph(&g, &[0, 2, 3]);
        for v in sub.graph.vertices() {
            for &w in sub.graph.neighbors(v) {
                assert!(g.has_edge(sub.original[v as usize], sub.original[w as usize]));
            }
        }
    }
}
