//! Connected components via iterative BFS.

use crate::csr::{CsrGraph, VertexId};

/// Component labelling of a graph's vertices.
#[derive(Clone, Debug)]
pub struct ComponentLabels {
    /// `label[v]` = dense component id in `0..num_components`.
    pub label: Vec<u32>,
    /// Number of components (isolated vertices each count as one).
    pub num_components: usize,
}

impl ComponentLabels {
    /// Sizes of all components, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_components];
        for &l in &self.label {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// The label of the largest component, or `None` for an empty graph.
    pub fn largest(&self) -> Option<u32> {
        let sizes = self.sizes();
        sizes.iter().enumerate().max_by_key(|&(_, s)| *s).map(|(i, _)| i as u32)
    }

    /// Vertices of component `c`.
    pub fn members(&self, c: u32) -> Vec<VertexId> {
        self.label
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == c)
            .map(|(v, _)| v as VertexId)
            .collect()
    }
}

/// Labels connected components with BFS; `O(|V| + |E|)`.
pub fn connected_components(g: &CsrGraph) -> ComponentLabels {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut queue: Vec<VertexId> = Vec::new();
    let mut next = 0u32;
    for s in 0..n as VertexId {
        if label[s as usize] != u32::MAX {
            continue;
        }
        label[s as usize] = next;
        queue.clear();
        queue.push(s);
        while let Some(v) = queue.pop() {
            for &w in g.neighbors(v) {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = next;
                    queue.push(w);
                }
            }
        }
        next += 1;
    }
    ComponentLabels { label, num_components: next as usize }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::GraphBuilder;

    #[test]
    fn two_triangles_and_isolated_vertex() {
        let g = GraphBuilder::new()
            .with_num_vertices(7)
            .edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
            .build();
        let cc = connected_components(&g);
        assert_eq!(cc.num_components, 3);
        let sizes = {
            let mut s = cc.sizes();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 3, 3]);
    }

    #[test]
    fn single_component() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 3)]);
        let cc = connected_components(&g);
        assert_eq!(cc.num_components, 1);
        assert_eq!(cc.largest(), Some(0));
        assert_eq!(cc.members(0).len(), 4);
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = GraphBuilder::new().build();
        let cc = connected_components(&g);
        assert_eq!(cc.num_components, 0);
        assert_eq!(cc.largest(), None);
    }
}
