//! SNAP-style edge-list I/O.
//!
//! The paper's datasets (as-skitter, soc-LiveJournal, …) ship as whitespace
//! separated `u v` lines with `#` comments. This reader accepts that format
//! so the original inputs can be used verbatim when available; the workspace
//! otherwise falls back to the synthetic stand-ins in `hdsd-datasets`.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;

/// Reads an edge list. Lines starting with `#` or `%` are comments; blank
/// lines are skipped; vertex ids must fit in `u32`. Ids are used as-is
/// (no compaction), so sparse id spaces produce isolated vertices.
pub fn read_edge_list(path: impl AsRef<Path>) -> io::Result<CsrGraph> {
    let file = File::open(path)?;
    read_edge_list_from(BufReader::new(file))
}

/// Reads an edge list from any buffered reader (see [`read_edge_list`]).
pub fn read_edge_list_from(reader: impl BufRead) -> io::Result<CsrGraph> {
    let mut b = GraphBuilder::new();
    let mut line = String::new();
    let mut reader = reader;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (u, v) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed edge line: {t:?}"),
                ))
            }
        };
        let parse = |s: &str| {
            s.parse::<u32>().map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad vertex id {s:?}: {e}"))
            })
        };
        b.add_edge(parse(u)?, parse(v)?);
    }
    Ok(b.build())
}

/// Writes the canonical edge list (`u v` per line, `u < v`) with a header
/// comment, round-trippable through [`read_edge_list`].
pub fn write_edge_list(g: &CsrGraph, path: impl AsRef<Path>) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# hdsd edge list: {} vertices, {} edges", g.num_vertices(), g.num_edges())?;
    for &(u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use std::io::Cursor;

    #[test]
    fn parses_comments_blank_lines_and_dups() {
        let text = "# comment\n% another\n\n0 1\n1\t2\n2 0\n1 0\n";
        let g = read_edge_list_from(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_edge_list_from(Cursor::new("0\n")).is_err());
        assert!(read_edge_list_from(Cursor::new("a b\n")).is_err());
        assert!(read_edge_list_from(Cursor::new("-1 2\n")).is_err());
    }

    #[test]
    fn round_trip() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let dir = std::env::temp_dir().join("hdsd_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.txt");
        write_edge_list(&g, &path).unwrap();
        let g2 = read_edge_list(&path).unwrap();
        assert_eq!(g.edges(), g2.edges());
        assert_eq!(g.num_vertices(), g2.num_vertices());
        std::fs::remove_file(path).ok();
    }
}
