//! SNAP-style edge-list I/O, plus a versioned binary graph section used by
//! the `hdsd-service` snapshot format.
//!
//! The paper's datasets (as-skitter, soc-LiveJournal, …) ship as whitespace
//! separated `u v` lines with `#` comments. This reader accepts that format
//! so the original inputs can be used verbatim when available; the workspace
//! otherwise falls back to the synthetic stand-ins in `hdsd-datasets`.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::{csr_from_canonical_edges, GraphBuilder};
use crate::csr::CsrGraph;

/// Magic prefix of the binary graph section.
pub const GRAPH_BINARY_MAGIC: &[u8; 8] = b"HDSDGRPH";
/// Current binary graph section version.
pub const GRAPH_BINARY_VERSION: u32 = 1;

/// Table for the reflected IEEE 802.3 CRC-32 (polynomial `0xEDB88320`),
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Incremental CRC-32 (IEEE 802.3, the zlib/PNG polynomial) — hand-rolled
/// like the rest of the workspace's codecs so persistence checksums stay
/// dependency-free. Used by the snapshot trailer and the service's
/// write-ahead log records to detect torn writes and bit rot.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh digest.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s = CRC32_TABLE[((s ^ b as u32) & 0xFF) as usize] ^ (s >> 8);
        }
        self.state = s;
    }

    /// The digest of everything fed so far (does not consume; more bytes
    /// may still be fed after peeking).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// Writes one little-endian `u32`.
pub fn write_u32(out: &mut impl Write, v: u32) -> io::Result<()> {
    out.write_all(&v.to_le_bytes())
}

/// Writes one little-endian `u64`.
pub fn write_u64(out: &mut impl Write, v: u64) -> io::Result<()> {
    out.write_all(&v.to_le_bytes())
}

/// Reads one little-endian `u32`.
pub fn read_u32(input: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    input.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Reads one little-endian `u64`.
pub fn read_u64(input: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    input.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes the graph as a self-delimiting binary section: magic, version,
/// vertex/edge counts, then the canonical `u < v` edge list as `u32` pairs.
/// Isolated trailing vertices are preserved (unlike the text format).
pub fn write_graph_binary(g: &CsrGraph, out: &mut impl Write) -> io::Result<()> {
    out.write_all(GRAPH_BINARY_MAGIC)?;
    write_u32(out, GRAPH_BINARY_VERSION)?;
    write_u64(out, g.num_vertices() as u64)?;
    write_u64(out, g.num_edges() as u64)?;
    for &(u, v) in g.edges() {
        write_u32(out, u)?;
        write_u32(out, v)?;
    }
    Ok(())
}

/// Reads a binary graph section written by [`write_graph_binary`].
pub fn read_graph_binary(input: &mut impl Read) -> io::Result<CsrGraph> {
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic)?;
    if &magic != GRAPH_BINARY_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not an hdsd binary graph"));
    }
    let version = read_u32(input)?;
    if version != GRAPH_BINARY_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported graph section version {version}"),
        ));
    }
    let n = read_u64(input)? as usize;
    let m = read_u64(input)? as usize;
    // Both counts are untrusted. Ids must fit u32; the vertex count is
    // additionally tied to the edge count (allowing a generous isolated-id
    // margin for sparse id spaces) so a corrupt header cannot make
    // `build()` allocate tens of GB of CSR offsets before any read fails.
    if n > u32::MAX as usize || m > (u32::MAX as usize) * 16 || n > 16 * m + (1 << 24) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible graph dimensions"));
    }
    // The format stores the canonical edge list (lexicographic, deduped,
    // `u < v`), so the CSR can be filled directly without the builder's
    // sort/dedup pass — snapshot restores are one linear read. Canonical
    // order is validated while reading; the up-front reservation is
    // clamped so a corrupt edge count fails on a short read rather than
    // attempting a huge allocation.
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m.min(1 << 22));
    let mut prev: Option<(u32, u32)> = None;
    for _ in 0..m {
        let u = read_u32(input)?;
        let v = read_u32(input)?;
        if u >= v || v as usize >= n || prev.is_some_and(|p| p >= (u, v)) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "binary graph section is not canonical (order, duplicate, or self-loop)",
            ));
        }
        prev = Some((u, v));
        edges.push((u, v));
    }
    Ok(csr_from_canonical_edges(edges, n))
}

/// Reads an edge list. Lines starting with `#` or `%` are comments; blank
/// lines are skipped; vertex ids must fit in `u32`. Ids are used as-is
/// (no compaction), so sparse id spaces produce isolated vertices.
pub fn read_edge_list(path: impl AsRef<Path>) -> io::Result<CsrGraph> {
    let file = File::open(path)?;
    read_edge_list_from(BufReader::new(file))
}

/// Reads an edge list from any buffered reader (see [`read_edge_list`]).
pub fn read_edge_list_from(reader: impl BufRead) -> io::Result<CsrGraph> {
    let mut b = GraphBuilder::new();
    let mut line = String::new();
    let mut reader = reader;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (u, v) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed edge line: {t:?}"),
                ))
            }
        };
        let parse = |s: &str| {
            s.parse::<u32>().map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidData, format!("bad vertex id {s:?}: {e}"))
            })
        };
        b.add_edge(parse(u)?, parse(v)?);
    }
    Ok(b.build())
}

/// Writes the canonical edge list (`u v` per line, `u < v`) with a header
/// comment, round-trippable through [`read_edge_list`].
pub fn write_edge_list(g: &CsrGraph, path: impl AsRef<Path>) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# hdsd edge list: {} vertices, {} edges", g.num_vertices(), g.num_edges())?;
    for &(u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use std::io::Cursor;

    #[test]
    fn crc32_matches_known_answers() {
        // The IEEE check value: every conforming CRC-32 yields this for
        // the digits "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        // Incremental feeding equals one-shot.
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"56789");
        assert_eq!(c.finish(), 0xCBF4_3926);
        // Any single-bit flip changes the digest.
        let base = crc32(b"hdsd wal record");
        let mut bytes = b"hdsd wal record".to_vec();
        for bit in 0..bytes.len() * 8 {
            bytes[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&bytes), base, "bit {bit} not detected");
            bytes[bit / 8] ^= 1 << (bit % 8);
        }
    }

    #[test]
    fn parses_comments_blank_lines_and_dups() {
        let text = "# comment\n% another\n\n0 1\n1\t2\n2 0\n1 0\n";
        let g = read_edge_list_from(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_edge_list_from(Cursor::new("0\n")).is_err());
        assert!(read_edge_list_from(Cursor::new("a b\n")).is_err());
        assert!(read_edge_list_from(Cursor::new("-1 2\n")).is_err());
    }

    #[test]
    fn binary_round_trip_preserves_isolated_vertices() {
        let g = GraphBuilder::new()
            .with_num_vertices(10)
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build();
        let mut buf = Vec::new();
        write_graph_binary(&g, &mut buf).unwrap();
        let g2 = read_graph_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(g.edges(), g2.edges());
        assert_eq!(g2.num_vertices(), 10);
    }

    #[test]
    fn binary_reader_rejects_garbage() {
        assert!(read_graph_binary(&mut &b"not a graph at all"[..]).is_err());
        let mut buf = Vec::new();
        write_graph_binary(&crate::builder::graph_from_edges([(0, 1)]), &mut buf).unwrap();
        buf[8] = 99; // corrupt the version
        assert!(read_graph_binary(&mut buf.as_slice()).is_err());
        // Truncated payload
        let mut buf = Vec::new();
        write_graph_binary(&crate::builder::graph_from_edges([(0, 1), (1, 2)]), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_graph_binary(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn round_trip() {
        let g = graph_from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]);
        let dir = std::env::temp_dir().join("hdsd_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.txt");
        write_edge_list(&g, &path).unwrap();
        let g2 = read_edge_list(&path).unwrap();
        assert_eq!(g.edges(), g2.edges());
        assert_eq!(g.num_vertices(), g2.num_vertices());
        std::fs::remove_file(path).ok();
    }
}
